// Property/fuzz tests for the arena-backed IntervalSet against two
// independent reference models:
//  * RefSet - a std::map-based reimplementation of the original interval
//    algorithm (the pre-arena representation), including its SrcLoc merge
//    rule (lowest-addressed absorbed interval donates the location). The
//    arena set must agree interval-for-interval, location included: that is
//    the byte-identical-findings guarantee the differential suites rely on.
//  * a plain byte set for membership/intersection ground truth.
// Also checks that the exact memory accounting returns to its baseline when
// sets are cleared or destroyed.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/interval_set.hpp"
#include "support/accounting.hpp"
#include "support/rng.hpp"

namespace tg::core {
namespace {

vex::SrcLoc loc(uint32_t line) { return vex::SrcLoc{0, line}; }

/// The original std::map representation, kept as an executable spec.
class RefSet {
 public:
  void add(uint64_t lo, uint64_t hi, vex::SrcLoc at) {
    uint64_t new_lo = lo;
    uint64_t new_hi = hi;
    vex::SrcLoc merged = at;
    bool absorbed = false;
    auto it = map_.lower_bound(lo);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.hi >= lo) it = prev;  // touches from the left
    }
    while (it != map_.end() && it->first <= new_hi) {
      if (!absorbed) {
        merged = it->second.loc;  // lowest-addressed absorbed loc wins
        absorbed = true;
      }
      new_lo = std::min(new_lo, it->first);
      new_hi = std::max(new_hi, it->second.hi);
      it = map_.erase(it);
    }
    map_[new_lo] = {new_hi, merged};
  }

  void clear() { map_.clear(); }

  size_t interval_count() const { return map_.size(); }

  uint64_t byte_count() const {
    uint64_t total = 0;
    for (const auto& [lo, node] : map_) total += node.hi - lo;
    return total;
  }

  struct Entry {
    uint64_t lo;
    uint64_t hi;
    vex::SrcLoc loc;
  };
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    for (const auto& [lo, node] : map_) out.push_back({lo, node.hi, node.loc});
    return out;
  }

 private:
  struct Node {
    uint64_t hi;
    vex::SrcLoc loc;
  };
  std::map<uint64_t, Node> map_;
};

/// Arena and reference must hold the same intervals with the same locs.
void expect_same(const IntervalSet& set, const RefSet& ref) {
  const std::vector<RefSet::Entry> expected = ref.entries();
  ASSERT_EQ(set.interval_count(), expected.size());
  EXPECT_EQ(set.byte_count(), ref.byte_count());
  size_t i = 0;
  set.for_each([&](uint64_t lo, uint64_t hi, vex::SrcLoc at) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(lo, expected[i].lo) << "interval " << i;
    EXPECT_EQ(hi, expected[i].hi) << "interval " << i;
    EXPECT_EQ(at.file, expected[i].loc.file) << "interval " << i;
    EXPECT_EQ(at.line, expected[i].loc.line) << "interval " << i;
    ++i;
  });
  EXPECT_EQ(i, expected.size());
  if (!expected.empty()) {
    EXPECT_EQ(set.bounds().lo, expected.front().lo);
    EXPECT_EQ(set.bounds().hi, expected.back().hi);
  } else {
    EXPECT_TRUE(set.bounds().empty());
  }
}

/// One random add/clear workload, mirrored into both models after every
/// step, with byte-level contains() spot checks.
void fuzz_one(uint64_t seed, uint32_t steps, uint32_t addr_space,
              uint32_t max_len, double clear_chance) {
  Rng rng(seed);
  IntervalSet set;
  RefSet ref;
  std::set<uint64_t> bytes;
  uint32_t line = 1;
  for (uint32_t step = 0; step < steps; ++step) {
    if (clear_chance > 0 && rng.chance(clear_chance)) {
      set.clear();
      ref.clear();
      bytes.clear();
    } else {
      const uint64_t lo = rng.below(addr_space);
      const uint64_t hi = lo + 1 + rng.below(max_len);
      const vex::SrcLoc at = loc(line++);
      set.add(lo, hi, at);
      ref.add(lo, hi, at);
      for (uint64_t b = lo; b < hi; ++b) bytes.insert(b);
    }
    expect_same(set, ref);
    for (int probe = 0; probe < 8; ++probe) {
      const uint64_t addr = rng.below(addr_space + max_len);
      EXPECT_EQ(set.contains(addr), bytes.count(addr) != 0) << "addr " << addr;
    }
  }
}

TEST(IntervalFuzz, RandomSmallDense) { fuzz_one(1, 600, 256, 16, 0.01); }
TEST(IntervalFuzz, RandomWideSparse) { fuzz_one(2, 400, 1u << 16, 64, 0.0); }
TEST(IntervalFuzz, RandomWithClears) { fuzz_one(3, 600, 4096, 32, 0.05); }
TEST(IntervalFuzz, RandomLongRanges) { fuzz_one(4, 300, 2048, 512, 0.02); }
TEST(IntervalFuzz, ManySeeds) {
  for (uint64_t seed = 10; seed < 30; ++seed) {
    fuzz_one(seed, 120, 1024, 48, 0.03);
  }
}

TEST(IntervalFuzz, DenseSweepMatchesReference) {
  IntervalSet set;
  RefSet ref;
  for (uint64_t i = 0; i < 4096; ++i) {
    set.add(i * 8, i * 8 + 8, loc(1));
    ref.add(i * 8, i * 8 + 8, loc(1));
  }
  expect_same(set, ref);
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalFuzz, BackwardSweepMatchesReference) {
  IntervalSet set;
  RefSet ref;
  for (uint64_t i = 4096; i-- > 0;) {
    set.add(i * 8, i * 8 + 8, loc(static_cast<uint32_t>(i + 1)));
    ref.add(i * 8, i * 8 + 8, loc(static_cast<uint32_t>(i + 1)));
  }
  expect_same(set, ref);
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalFuzz, StridedThenBridgeMatchesReference) {
  IntervalSet set;
  RefSet ref;
  for (uint64_t i = 0; i < 1000; ++i) {
    set.add(i * 64, i * 64 + 8, loc(1));
    ref.add(i * 64, i * 64 + 8, loc(1));
  }
  expect_same(set, ref);
  EXPECT_EQ(set.interval_count(), 1000u);
  set.add(0, 64 * 1000, loc(2));
  ref.add(0, 64 * 1000, loc(2));
  expect_same(set, ref);
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalFuzz, IntersectsMatchesByteModel) {
  Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    IntervalSet a;
    IntervalSet b;
    std::set<uint64_t> bytes_a;
    std::set<uint64_t> bytes_b;
    const uint32_t n = 1 + static_cast<uint32_t>(rng.below(40));
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t lo = rng.below(2048);
      uint64_t hi = lo + 1 + rng.below(16);
      a.add(lo, hi, loc(1));
      for (uint64_t x = lo; x < hi; ++x) bytes_a.insert(x);
      lo = rng.below(2048);
      hi = lo + 1 + rng.below(16);
      b.add(lo, hi, loc(2));
      for (uint64_t x = lo; x < hi; ++x) bytes_b.insert(x);
    }
    bool truth = false;
    for (uint64_t x : bytes_a) {
      if (bytes_b.count(x) != 0) {
        truth = true;
        break;
      }
    }
    EXPECT_EQ(a.intersects(b), truth) << "round " << round;
    EXPECT_EQ(b.intersects(a), truth) << "round " << round;
  }
}

TEST(IntervalFuzz, OverlapVisitorMatchesReference) {
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    IntervalSet a;
    IntervalSet b;
    RefSet ref_a;
    RefSet ref_b;
    uint32_t line = 1;
    const uint32_t n = 1 + static_cast<uint32_t>(rng.below(50));
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t lo = rng.below(1024);
      uint64_t hi = lo + 1 + rng.below(24);
      vex::SrcLoc at = loc(line++);
      a.add(lo, hi, at);
      ref_a.add(lo, hi, at);
      lo = rng.below(1024);
      hi = lo + 1 + rng.below(24);
      at = loc(line++);
      b.add(lo, hi, at);
      ref_b.add(lo, hi, at);
    }
    // Expected overlaps from the reference entries, in address order.
    std::vector<IntervalSet::Overlap> expected;
    for (const RefSet::Entry& ea : ref_a.entries()) {
      for (const RefSet::Entry& eb : ref_b.entries()) {
        const uint64_t lo = std::max(ea.lo, eb.lo);
        const uint64_t hi = std::min(ea.hi, eb.hi);
        if (lo < hi) expected.push_back({lo, hi, ea.loc, eb.loc});
      }
    }
    std::sort(expected.begin(), expected.end(),
              [](const IntervalSet::Overlap& x, const IntervalSet::Overlap& y) {
                return x.lo < y.lo;
              });
    size_t i = 0;
    a.for_each_overlap(b, [&](const IntervalSet::Overlap& got) {
      ASSERT_LT(i, expected.size()) << "round " << round;
      EXPECT_EQ(got.lo, expected[i].lo);
      EXPECT_EQ(got.hi, expected[i].hi);
      EXPECT_EQ(got.this_loc.line, expected[i].this_loc.line);
      EXPECT_EQ(got.other_loc.line, expected[i].other_loc.line);
      ++i;
    });
    EXPECT_EQ(i, expected.size()) << "round " << round;
  }
}

/// Spill round trip: serialize -> clear -> deserialize must reproduce the
/// set interval-for-interval (SrcLoc merge results included - the same
/// parity the differential suites rely on) AND byte-for-byte in the arena
/// accounting, so evict/reload cycles are exact in both directions.
void roundtrip_one(uint64_t seed, uint32_t steps, uint32_t addr_space,
                   uint32_t max_len) {
  MemAccountant& accountant = MemAccountant::instance();
  Rng rng(seed);
  IntervalSet set;
  RefSet ref;
  uint32_t line = 1;
  for (uint32_t step = 0; step < steps; ++step) {
    const uint64_t lo = rng.below(addr_space);
    const uint64_t hi = lo + 1 + rng.below(max_len);
    const vex::SrcLoc at = loc(line++);
    set.add(lo, hi, at);
    ref.add(lo, hi, at);
  }
  const uint64_t arena_before = set.arena_bytes();
  const int64_t accounted_before =
      accountant.category_bytes(MemCategory::kIntervalTrees);

  std::vector<uint8_t> image;
  set.serialize(image);
  EXPECT_EQ(set.arena_bytes(), arena_before);  // serialize does not mutate
  const uint64_t released = set.clear();
  EXPECT_EQ(released, arena_before);  // evict releases exactly what was held

  const size_t used = set.deserialize(image.data(), image.size());
  EXPECT_EQ(used, image.size());  // the record is consumed exactly
  expect_same(set, ref);
  // Reload re-accounts exactly the bytes the evict released.
  EXPECT_EQ(set.arena_bytes(), arena_before);
  EXPECT_EQ(accountant.category_bytes(MemCategory::kIntervalTrees),
            accounted_before);

  // Representation-exact: a second serialization is byte-identical.
  std::vector<uint8_t> image2;
  set.serialize(image2);
  EXPECT_EQ(image, image2);

  // The reloaded set keeps working (reloads feed finish-time scans only,
  // but growth must not corrupt it either).
  set.add(0, addr_space + max_len, loc(line));
  ref.add(0, addr_space + max_len, loc(line));
  expect_same(set, ref);
}

TEST(IntervalFuzz, SerializeRoundTripSmallDense) { roundtrip_one(21, 600, 256, 16); }
TEST(IntervalFuzz, SerializeRoundTripWideSparse) { roundtrip_one(22, 400, 1u << 16, 64); }
TEST(IntervalFuzz, SerializeRoundTripLongRanges) { roundtrip_one(23, 300, 2048, 512); }
TEST(IntervalFuzz, SerializeRoundTripManySeeds) {
  for (uint64_t seed = 40; seed < 60; ++seed) {
    roundtrip_one(seed, 150, 1024, 48);
  }
}

TEST(IntervalFuzz, SerializeRoundTripEmptySet) {
  IntervalSet set;
  std::vector<uint8_t> image;
  set.serialize(image);
  EXPECT_GT(image.size(), 0u);  // a header is always present
  set.add(10, 20, loc(1));
  EXPECT_EQ(set.deserialize(image.data(), image.size()), image.size());
  EXPECT_EQ(set.interval_count(), 0u);
  EXPECT_EQ(set.arena_bytes(), 0u);
  EXPECT_TRUE(set.bounds().empty());
}

TEST(IntervalFuzz, SerializeRoundTripPreservesFreeList) {
  // Merging absorbs chunks into the free list; the round trip must keep
  // their capacities so arena_bytes is exact, not just the live contents.
  IntervalSet set;
  for (uint64_t i = 0; i < 1000; ++i) set.add(i * 64, i * 64 + 8, loc(1));
  set.add(0, 64 * 1000, loc(2));  // bridge: everything merges into one
  ASSERT_EQ(set.interval_count(), 1u);
  const uint64_t arena_before = set.arena_bytes();
  std::vector<uint8_t> image;
  set.serialize(image);
  ASSERT_EQ(set.clear(), arena_before);
  ASSERT_EQ(set.deserialize(image.data(), image.size()), image.size());
  EXPECT_EQ(set.arena_bytes(), arena_before);
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalFuzz, DeserializeRejectsTruncatedImages) {
  IntervalSet set;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const uint64_t lo = rng.below(4096);
    set.add(lo, lo + 1 + rng.below(32), loc(1));
  }
  std::vector<uint8_t> image;
  set.serialize(image);
  for (size_t cut : {size_t{0}, size_t{3}, image.size() / 2,
                     image.size() - 1}) {
    IntervalSet victim;
    victim.add(1, 2, loc(9));
    EXPECT_EQ(victim.deserialize(image.data(), cut), 0u) << "cut " << cut;
    // A malformed image leaves the set empty, never half-loaded.
    EXPECT_EQ(victim.interval_count(), 0u) << "cut " << cut;
  }
  // The untruncated image still loads.
  IntervalSet ok;
  EXPECT_EQ(ok.deserialize(image.data(), image.size()), image.size());
  EXPECT_EQ(ok.interval_count(), set.interval_count());
}

TEST(IntervalFuzz, AccountingReturnsToBaseline) {
  MemAccountant& accountant = MemAccountant::instance();
  const int64_t baseline =
      accountant.category_bytes(MemCategory::kIntervalTrees);
  {
    IntervalSet set;
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t lo = rng.below(1u << 16);
      set.add(lo, lo + 1 + rng.below(32), loc(1));
    }
    EXPECT_GT(set.arena_bytes(), 0u);
    EXPECT_EQ(accountant.category_bytes(MemCategory::kIntervalTrees),
              baseline + static_cast<int64_t>(set.arena_bytes()));
    const uint64_t released = set.clear();
    EXPECT_GT(released, 0u);
    EXPECT_EQ(set.arena_bytes(), 0u);
    EXPECT_EQ(accountant.category_bytes(MemCategory::kIntervalTrees),
              baseline);
    // Reusable after a wholesale release.
    set.add(10, 20, loc(2));
    EXPECT_TRUE(set.contains(15));
  }
  // Destruction releases too.
  EXPECT_EQ(accountant.category_bytes(MemCategory::kIntervalTrees), baseline);
}

TEST(IntervalFuzz, ClearReturnsExactArenaBytes) {
  IntervalSet set;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t lo = rng.below(1u << 14);
    set.add(lo, lo + 1 + rng.below(16), loc(1));
  }
  const uint64_t before = set.arena_bytes();
  EXPECT_EQ(set.clear(), before);
  EXPECT_EQ(set.clear(), 0u);  // idempotent once empty
}

// --- access fingerprints -----------------------------------------------------

/// The soundness contract: the fingerprint may only prove disjointness. If
/// the exact trees intersect, maybe_intersects must say so - the converse
/// (maybe => intersects) is deliberately never asserted anywhere.
void fingerprint_soundness_one(uint64_t seed) {
  Rng rng(seed);
  // Random address scale per run: byte-scale sets live on one page (where
  // level 0 degenerates to a single bit), page- and superpage-scale sets
  // exercise multi-page runs and hash spread.
  const uint64_t units[] = {1, 64, 4096, 1u << 16};
  const uint64_t unit = units[rng.below(4)];
  // Half the pairs get a huge base offset, so genuinely disjoint pairs
  // (the case the filter exists for) occur often, not just by luck.
  const uint64_t base_b = rng.chance(0.5) ? (1ull << 32) : 0;

  IntervalSet a;
  IntervalSet b;
  const uint32_t adds = 4 + rng.below(60);
  for (uint32_t i = 0; i < adds; ++i) {
    const uint64_t lo = rng.below(1u << 12) * unit;
    const uint64_t len = 1 + rng.below(256) * unit;
    a.add(lo, lo + len, loc(1));
    const uint64_t lob = base_b + rng.below(1u << 12) * unit;
    const uint64_t lenb = 1 + rng.below(256) * unit;
    b.add(lob, lob + lenb, loc(2));
  }
  AccessFingerprint fa;
  AccessFingerprint fb;
  fa.build_from(a);
  fb.build_from(b);
  ASSERT_TRUE(fa.ready() && fb.ready());
  if (a.intersects(b)) {
    EXPECT_TRUE(fa.maybe_intersects(fb)) << "seed " << seed;
  }
  if (!fa.maybe_intersects(fb)) {
    EXPECT_FALSE(a.intersects(b)) << "seed " << seed;
  }

  // A fingerprint rebuilt from a deserialized arena (no incremental level-0
  // bitmap: it is re-derived from the intervals) must obey the same
  // contract against the original's fingerprint.
  std::vector<uint8_t> image;
  a.serialize(image);
  IntervalSet reloaded;
  ASSERT_EQ(reloaded.deserialize(image.data(), image.size()), image.size());
  AccessFingerprint fa2;
  fa2.build_from(reloaded);
  if (a.intersects(b)) {
    EXPECT_TRUE(fa2.maybe_intersects(fb)) << "seed " << seed << " reloaded";
  }
}

TEST(IntervalFuzz, FingerprintSoundness) {
  for (uint64_t seed = 100; seed < 400; ++seed) {
    fingerprint_soundness_one(seed);
  }
}

TEST(IntervalFuzz, FingerprintProvesDisjointnessSomewhere) {
  // Non-vacuousness: on far-apart page-scale sets the filter must actually
  // fire, otherwise the soundness fuzz proves nothing.
  IntervalSet a;
  IntervalSet b;
  for (uint64_t i = 0; i < 32; ++i) {
    a.add(i * 8192, i * 8192 + 4096, loc(1));
    b.add((1ull << 40) + i * 8192, (1ull << 40) + i * 8192 + 4096, loc(2));
  }
  AccessFingerprint fa;
  AccessFingerprint fb;
  fa.build_from(a);
  fb.build_from(b);
  EXPECT_FALSE(fa.maybe_intersects(fb));
  EXPECT_TRUE(fa.maybe_intersects(fa));  // self-overlap is never filtered
}

TEST(IntervalFuzz, FingerprintRunCapStaysSound) {
  // Way past kMaxRuns distinct page runs: the directory widens its last run
  // instead of growing, which may only over-approximate.
  IntervalSet sparse;
  for (uint64_t i = 0; i < 4 * AccessFingerprint::kMaxRuns; ++i) {
    sparse.add(i * (1u << 20), i * (1u << 20) + 8, loc(1));
  }
  AccessFingerprint fp;
  fp.build_from(sparse);
  EXPECT_LE(fp.runs().size(), AccessFingerprint::kMaxRuns);
  // Every touched page is still covered by some run, at whatever page
  // granularity the span-tuned build picked.
  sparse.for_each([&](uint64_t lo, uint64_t hi, vex::SrcLoc) {
    const uint64_t plo = lo >> fp.page_shift();
    const uint64_t phi = ((hi - 1) >> fp.page_shift()) + 1;
    bool covered = false;
    for (const AccessFingerprint::PageRun& run : fp.runs()) {
      if (run.lo <= plo && phi <= run.hi) covered = true;
    }
    EXPECT_TRUE(covered) << "interval [" << lo << ", " << hi << ")";
  });
  // An overlapping set must still be flagged as maybe-intersecting.
  IntervalSet probe;
  probe.add(100 * (1u << 20), 100 * (1u << 20) + 4, loc(2));
  AccessFingerprint fprobe;
  fprobe.build_from(probe);
  EXPECT_TRUE(fp.maybe_intersects(fprobe));
}

TEST(IntervalFuzz, FingerprintSerializeRoundTrip) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    IntervalSet set;
    const uint32_t adds = rng.below(200);
    for (uint32_t i = 0; i < adds; ++i) {
      const uint64_t lo = rng.below(1u << 16) * 4096;
      set.add(lo, lo + 1 + rng.below(1u << 14), loc(1));
    }
    AccessFingerprint fp;
    fp.build_from(set);
    std::vector<uint8_t> image;
    fp.serialize(image);

    AccessFingerprint back;
    ASSERT_EQ(back.deserialize(image.data(), image.size()), image.size());
    EXPECT_EQ(back.ready(), fp.ready());
    ASSERT_EQ(back.runs().size(), fp.runs().size());
    for (size_t i = 0; i < fp.runs().size(); ++i) {
      EXPECT_EQ(back.runs()[i].lo, fp.runs()[i].lo);
      EXPECT_EQ(back.runs()[i].hi, fp.runs()[i].hi);
    }
    for (uint32_t w = 0; w < kFingerprintWords; ++w) {
      EXPECT_EQ(back.words()[w], fp.words()[w]);
    }
    // Second serialize is byte-identical (the spill archive's invariant).
    std::vector<uint8_t> image2;
    back.serialize(image2);
    EXPECT_EQ(image, image2);
  }
}

TEST(IntervalFuzz, FingerprintDeserializeRejectsTruncatedImages) {
  IntervalSet set;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const uint64_t lo = rng.below(1u << 10) * 4096;
    set.add(lo, lo + 1 + rng.below(64), loc(1));
  }
  AccessFingerprint fp;
  fp.build_from(set);
  ASSERT_GT(fp.runs().size(), 1u);
  std::vector<uint8_t> image;
  fp.serialize(image);
  for (size_t cut = 0; cut < image.size(); ++cut) {
    AccessFingerprint victim;
    EXPECT_EQ(victim.deserialize(image.data(), cut), 0u) << "cut " << cut;
    EXPECT_FALSE(victim.ready()) << "cut " << cut;
  }
  // Corrupt run ordering is rejected too, not just short reads.
  std::vector<uint8_t> bad = image;
  const size_t runs_at = 1 + 4 + sizeof(uint64_t) * kFingerprintWords;
  uint64_t lo1;
  std::memcpy(&lo1, bad.data() + runs_at, sizeof(lo1));
  lo1 += 1u << 20;  // first run now starts after the second
  std::memcpy(bad.data() + runs_at, &lo1, sizeof(lo1));
  AccessFingerprint victim;
  EXPECT_EQ(victim.deserialize(bad.data(), bad.size()), 0u);
}

TEST(IntervalFuzz, FingerprintAccountingReturnsToBaseline) {
  MemAccountant& accountant = MemAccountant::instance();
  const int64_t baseline =
      accountant.category_bytes(MemCategory::kFingerprints);
  {
    IntervalSet set;
    for (uint64_t i = 0; i < 48; ++i) {
      set.add(i * (1u << 20), i * (1u << 20) + 8, loc(1));
    }
    AccessFingerprint fp;
    fp.build_from(set);
    EXPECT_GT(accountant.category_bytes(MemCategory::kFingerprints),
              baseline);
  }
  // Destruction releases the run directory.
  EXPECT_EQ(accountant.category_bytes(MemCategory::kFingerprints), baseline);
}

}  // namespace
}  // namespace tg::core
