// Session-layer edge cases: option plumbing, budget exhaustion, report
// rendering details, and the dedup key's symmetry.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/report.hpp"
#include "programs/registry.hpp"
#include "tools/session.hpp"

namespace tg::tools {
namespace {

TEST(SessionEdge, BudgetExceededIsReported) {
  const rt::GuestProgram* program = progs::find_program("cilk-fib");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kNone;
  options.num_threads = 2;
  options.max_retired = 500;  // nowhere near enough for fib(16)
  const SessionResult result = run_session(*program, options);
  EXPECT_EQ(result.status, SessionResult::Status::kBudget);
  EXPECT_EQ(classify(false, result), Verdict::kDeadlock);
}

TEST(SessionEdge, QuantumDoesNotChangeVerdicts) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  for (uint64_t quantum : {50ull, 500ull, 50'000ull}) {
    SessionOptions options;
    options.tool = ToolKind::kTaskgrind;
    options.num_threads = 2;
    options.quantum = quantum;
    const SessionResult result = run_session(*program, options);
    EXPECT_TRUE(result.racy()) << "quantum " << quantum;
  }
}

TEST(SessionEdge, SuppressionOptionsAreRespected) {
  const rt::GuestProgram* program = progs::find_program("TMB1006-tls_1");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 1;
  EXPECT_FALSE(run_session(*program, options).racy());
  options.taskgrind.suppress_tls = false;
  EXPECT_TRUE(run_session(*program, options).racy());
}

TEST(SessionEdge, AnalysisThreadsOptionKeepsVerdicts) {
  const rt::GuestProgram* program =
      progs::find_program("DRB106-taskwaitmissing-orig");
  ASSERT_NE(program, nullptr);
  size_t base_count = 0;
  for (int threads : {1, 3}) {
    SessionOptions options;
    options.tool = ToolKind::kTaskgrind;
    options.num_threads = 4;
    options.taskgrind.analysis_threads = threads;
    const SessionResult result = run_session(*program, options);
    EXPECT_TRUE(result.racy());
    if (threads == 1) {
      base_count = result.report_count;
    } else {
      EXPECT_EQ(result.report_count, base_count);
    }
  }
}

TEST(SessionEdge, ReportTextsCapped) {
  const rt::GuestProgram* program =
      progs::find_program("DRB106-taskwaitmissing-orig");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 4;
  const SessionResult result = run_session(*program, options);
  EXPECT_LE(result.report_texts.size(), 8u);
  EXPECT_GE(result.report_count, result.report_texts.size());
}

// --- memory-pressure governor configuration ------------------------------

TEST(SessionEdge, UnwritableSpillDirIsConfigError) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 2;
  options.taskgrind.max_tree_bytes = 64 * 1024;
  options.taskgrind.spill_dir = "/dev/null/not-a-directory";
  const SessionResult result = run_session(*program, options);
  EXPECT_EQ(result.status, SessionResult::Status::kConfig);
  EXPECT_NE(result.error.find("spill directory unusable"), std::string::npos)
      << result.error;
  // The probe never reaches execution, so there is nothing to report.
  EXPECT_EQ(result.report_count, 0u);
}

TEST(SessionEdge, SpillDirOnlyValidatedWhenGoverned) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 2;
  // A bad directory without a ceiling is inert configuration, not an error.
  options.taskgrind.spill_dir = "/dev/null/not-a-directory";
  EXPECT_EQ(run_session(*program, options).status,
            SessionResult::Status::kOk);
}

TEST(SessionEdge, SpillFilesRemovedOnBudgetAbort) {
  // Early-error unwind: the guest blows its instruction budget mid-run;
  // the archive (and its records) must still be cleaned up.
  const auto dir =
      std::filesystem::temp_directory_path() / "tg-session-edge-spill";
  std::filesystem::create_directories(dir);
  const rt::GuestProgram* program = progs::find_program("cilk-fib");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 2;
  options.max_retired = 30'000;  // aborts fib(16) partway (~57k to finish)
  options.taskgrind.max_tree_bytes = 4 * 1024;  // spill eagerly
  options.taskgrind.spill_dir = dir.string();
  const SessionResult result = run_session(*program, options);
  EXPECT_EQ(result.status, SessionResult::Status::kBudget);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(SessionEdge, GovernorKeepsVerdictsOnNormalRuns) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  const auto dir =
      std::filesystem::temp_directory_path() / "tg-session-edge-normal";
  std::filesystem::create_directories(dir);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 2;
  options.taskgrind.max_tree_bytes = 4 * 1024;
  options.taskgrind.spill_dir = dir.string();
  const SessionResult result = run_session(*program, options);
  EXPECT_TRUE(result.racy());
  EXPECT_TRUE(std::filesystem::is_empty(dir));  // normal finalize cleans up
  std::filesystem::remove_all(dir);
}

// --- report rendering ----------------------------------------------------

TEST(ReportRendering, FreedBlockAnnotated) {
  core::AllocInfo alloc;
  alloc.addr = 0x100;
  alloc.size = 32;
  alloc.freed = true;
  core::RaceReport report;
  report.lo = 0x104;
  report.hi = 0x108;
  report.first = {1, 0, 0, "a.c", 10, true};
  report.second = {2, 1, 1, "a.c", 20, false};
  report.alloc = &alloc;
  const std::string text = report.to_string();
  EXPECT_NE(text.find("(freed)"), std::string::npos);
  EXPECT_NE(text.find("a.c:10"), std::string::npos);
  EXPECT_NE(text.find("a.c:20"), std::string::npos);
}

TEST(ReportRendering, SummaryMarksDirections) {
  core::RaceReport report;
  report.lo = 0x10;
  report.hi = 0x18;
  report.first = {1, 0, 0, "a.c", 10, true};
  report.second = {2, 1, 1, "b.c", 20, false};
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("a.c:10 W"), std::string::npos);
  EXPECT_NE(summary.find("b.c:20 R"), std::string::npos);
}

TEST(ReportRendering, DedupKeySymmetric) {
  core::RaceReport ab;
  ab.lo = 0x10;
  ab.hi = 0x18;
  ab.first = {1, 0, 0, "a.c", 10, true};
  ab.second = {2, 1, 1, "b.c", 20, true};
  core::RaceReport ba = ab;
  std::swap(ba.first, ba.second);
  EXPECT_EQ(core::report_dedup_key(ab), core::report_dedup_key(ba));
}

}  // namespace
}  // namespace tg::tools
