// Randomized end-to-end property tests: generate task programs with a
// host-side happens-before oracle, run them under the tools, and check the
// verdicts against ground truth. The generator + oracle live in
// random_program.hpp (shared with the ordering differential suite).
//
// Properties checked per seed:
//  * Taskgrind's verdict == oracle (sound AND precise on this space);
//  * Taskgrind's racy cells == oracle's racy cells;
//  * TaskSanitizer's verdict == oracle (all tasks are siblings, so its
//    global dependence matching coincides with the spec here);
//  * Archer reports no false positives (its HB is a superset of logical
//    HB on every schedule).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "programs/common.hpp"
#include "random_program.hpp"
#include "support/rng.hpp"
#include "tools/session.hpp"

namespace tg::progs {
namespace {

using tools::SessionOptions;
using tools::SessionResult;
using tools::ToolKind;

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, TaskgrindMatchesOracleExactly) {
  const uint64_t seed = GetParam();
  const RandomProgram spec = RandomProgram::generate(seed);
  const std::set<int> oracle = spec.racy_cells();
  const rt::GuestProgram guest = spec.to_guest(seed);

  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 4;
  const SessionResult result = tools::run_session(guest, options);
  ASSERT_EQ(result.status, SessionResult::Status::kOk);
  EXPECT_EQ(result.racy(), !oracle.empty()) << "seed " << seed;
}

TEST_P(RandomPrograms, TaskSanAgreesOnSiblingOnlyPrograms) {
  const uint64_t seed = GetParam();
  const RandomProgram spec = RandomProgram::generate(seed);
  const std::set<int> oracle = spec.racy_cells();
  const rt::GuestProgram guest = spec.to_guest(seed);

  SessionOptions options;
  options.tool = ToolKind::kTaskSan;
  options.num_threads = 4;
  const SessionResult result = tools::run_session(guest, options);
  ASSERT_EQ(result.status, SessionResult::Status::kOk);
  EXPECT_EQ(result.racy(), !oracle.empty()) << "seed " << seed;
}

TEST_P(RandomPrograms, ArcherNeverFalselyAccuses) {
  const uint64_t seed = GetParam();
  const RandomProgram spec = RandomProgram::generate(seed);
  if (!spec.racy_cells().empty()) GTEST_SKIP() << "only clean programs";
  const rt::GuestProgram guest = spec.to_guest(seed);

  for (uint64_t sched_seed = 1; sched_seed <= 3; ++sched_seed) {
    SessionOptions options;
    options.tool = ToolKind::kArcher;
    options.num_threads = 4;
    options.seed = sched_seed;
    const SessionResult result = tools::run_session(guest, options);
    ASSERT_EQ(result.status, SessionResult::Status::kOk);
    EXPECT_FALSE(result.racy()) << "seed " << seed << "/" << sched_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace tg::progs
