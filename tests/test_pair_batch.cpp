// Batched pair screening and its wire face.
//
// The CandidateBatch screen is a *pre-filter*: kBboxDisjoint / kFpDisjoint
// verdicts must be provable, kSurvive proves nothing. The suite pins the
// soundness obligations - a genuinely conflicting pair is never screened
// out, a cleared/deserialized bitmap is substituted with all-ones so it can
// only pass through - and the v1/v2 wire compatibility rules: a v1 stream
// (no page-shift byte in fingerprint images, no kPairBatch frames) still
// decodes, and a kPairBatch frame inside a v1 stream is rejected.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/pair_batch.hpp"
#include "core/segment_graph.hpp"
#include "core/segment_stream.hpp"

namespace tg::core {
namespace {

Segment make_segment(SegId id) {
  Segment seg;
  seg.id = id;
  seg.kind = SegKind::kTask;
  seg.task_id = 7;
  seg.seq_in_task = 3;
  seg.tid = 2;
  seg.region_id = 11;
  seg.first_access_loc = {4, 120};
  // Both spans > 2^20 bytes so build_from tunes each page shift to the
  // historical 4 KiB (12) - the only shift a layout-1 image can carry
  // implicitly.
  seg.reads.add(0x1000, 0x1040, {4, 121});
  seg.reads.add(0x180000, 0x180010, {4, 122});
  seg.writes.add(0x1020, 0x1030, {4, 123});
  seg.writes.add(0x160000, 0x160010, {4, 124});
  seg.sp_at_start = 0x7fff0000;
  seg.stack_base = 0x7fff8000;
  seg.stack_limit = 0x7ff00000;
  seg.tcb = 0x5000;
  seg.mutexes = {3, 9, 42};
  seg.finalize_fingerprints();
  return seg;
}

// --- pair-batch payload ------------------------------------------------------

TEST(PairBatch, PayloadRoundTrips) {
  const std::vector<WirePair> pairs = {{1, 2}, {9, 4}, {100000, 3}};
  std::vector<uint8_t> payload;
  encode_pair_batch(pairs, payload);

  std::vector<WirePair> decoded;
  std::string error;
  ASSERT_TRUE(decode_pair_batch(payload, decoded, &error)) << error;
  ASSERT_EQ(decoded.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(decoded[i].a, pairs[i].a);
    EXPECT_EQ(decoded[i].b, pairs[i].b);
  }

  std::vector<uint8_t> empty_payload;
  encode_pair_batch({}, empty_payload);
  ASSERT_TRUE(decode_pair_batch(empty_payload, decoded, &error)) << error;
  EXPECT_TRUE(decoded.empty());
}

TEST(PairBatch, MalformedPayloadsAreRejected) {
  std::vector<uint8_t> payload;
  encode_pair_batch({{1, 2}, {3, 4}}, payload);
  std::vector<WirePair> decoded;
  std::string error;

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<uint8_t> short_payload(payload.begin(),
                                       payload.begin() + cut);
    EXPECT_FALSE(decode_pair_batch(short_payload, decoded, &error))
        << "cut at " << cut;
  }
  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(decode_pair_batch(trailing, decoded, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

// --- v1 wire compatibility ---------------------------------------------------

std::vector<uint8_t> v1_stream_header() {
  std::vector<uint8_t> bytes;
  append_stream_header(bytes);
  bytes[8] = 1;  // u32 version, little-endian: rewrite 2 -> 1
  return bytes;
}

// Layout-1 fingerprint image: layout 2 minus the page-shift byte at
// offset 1 (ready | shift | nruns | words | runs). Only faithful when the
// fingerprint's shift is the historical 12, which make_segment guarantees.
void append_v1_fingerprint(const AccessFingerprint& fp,
                           std::vector<uint8_t>& out) {
  ASSERT_EQ(fp.page_shift(), kFingerprintPageShift);
  std::vector<uint8_t> image;
  fp.serialize(image);
  image.erase(image.begin() + 1);
  out.insert(out.end(), image.begin(), image.end());
}

TEST(PairBatch, V1StreamStillDecodes) {
  const Segment original = make_segment(17);
  std::vector<uint8_t> v1_image;
  encode_segment_meta(original, v1_image);
  append_v1_fingerprint(original.fp_reads, v1_image);
  append_v1_fingerprint(original.fp_writes, v1_image);
  original.reads.serialize(v1_image);
  original.writes.serialize(v1_image);

  std::vector<uint8_t> bytes = v1_stream_header();
  append_frame(bytes, FrameType::kSegment, 17, v1_image);
  std::vector<uint8_t> pair_payload;
  encode_pair({17, 18}, pair_payload);
  append_frame(bytes, FrameType::kPair, 0, pair_payload);
  append_frame(bytes, FrameType::kFinish, 0, {});

  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame)
      << decoder.error();
  EXPECT_EQ(decoder.version(), 1u);
  ASSERT_EQ(frame.type, FrameType::kSegment);

  Segment decoded;
  std::string error;
  ASSERT_TRUE(decode_segment(frame.payload, decoded, &error,
                             decoder.version()))
      << error;
  EXPECT_EQ(decoded.id, original.id);
  EXPECT_EQ(decoded.mutexes, original.mutexes);
  EXPECT_EQ(decoded.fp_reads.page_shift(), kFingerprintPageShift);
  EXPECT_TRUE(decoded.fp_reads.ready());
  EXPECT_TRUE(decoded.reads.intersects(original.reads));
  EXPECT_TRUE(decoded.writes.intersects(original.writes));
  // A v2-shaped image (with the shift byte) must NOT parse as v1: the
  // stray byte shifts every later field.
  std::vector<uint8_t> v2_image;
  encode_segment(original, v2_image);
  EXPECT_FALSE(decode_segment(v2_image, decoded, &error, 1));

  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPair);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kFinish);
}

TEST(PairBatch, PairBatchFrameRejectedInV1Stream) {
  std::vector<uint8_t> payload;
  encode_pair_batch({{1, 2}}, payload);
  std::vector<uint8_t> bytes = v1_stream_header();
  append_frame(bytes, FrameType::kPairBatch, 0, payload);

  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("pair-batch frame in a v1 stream"),
            std::string::npos)
      << decoder.error();

  // The same frame in a v2 stream is fine.
  std::vector<uint8_t> v2 = {};
  append_stream_header(v2);
  append_frame(v2, FrameType::kPairBatch, 0, payload);
  FrameDecoder ok;
  ok.append(v2.data(), v2.size());
  ASSERT_EQ(ok.next(frame), FrameDecoder::Status::kFrame) << ok.error();
  EXPECT_EQ(frame.type, FrameType::kPairBatch);
}

// --- fingerprint page-shift tuning -------------------------------------------

TEST(PairBatch, PageShiftAutoTunesToTheSpan) {
  // One 512-slot level-0 map: the picked shift is the smallest whose pages
  // cover the span.
  EXPECT_EQ(AccessFingerprint::pick_page_shift(0),
            AccessFingerprint::kMinPageShift);
  EXPECT_EQ(AccessFingerprint::pick_page_shift(512 * 8),
            AccessFingerprint::kMinPageShift);
  EXPECT_EQ(AccessFingerprint::pick_page_shift(1 << 21),
            kFingerprintPageShift);
  EXPECT_EQ(AccessFingerprint::pick_page_shift(UINT64_MAX),
            AccessFingerprint::kMaxPageShift);

  // A dense small segment tunes below the historical 4 KiB granule and
  // the tuned shift survives a serialize round-trip (layout 2).
  IntervalSet set;
  set.add(0x100, 0x140, {1, 1});
  set.add(0x200, 0x240, {1, 2});
  AccessFingerprint fp;
  fp.build_from(set);
  EXPECT_LT(fp.page_shift(), kFingerprintPageShift);

  std::vector<uint8_t> image;
  fp.serialize(image);
  AccessFingerprint back;
  ASSERT_GT(back.deserialize(image.data(), image.size(), 2), 0u);
  EXPECT_EQ(back.page_shift(), fp.page_shift());
  EXPECT_TRUE(back.maybe_intersects(fp));

  // The layout-1 reader has no shift field to read: it must assume the
  // historical 12 regardless of the writer's tuning.
  std::vector<uint8_t> v1 = image;
  v1.erase(v1.begin() + 1);
  AccessFingerprint legacy;
  ASSERT_GT(legacy.deserialize(v1.data(), v1.size(), 1), 0u);
  EXPECT_EQ(legacy.page_shift(), kFingerprintPageShift);
}

// --- screen soundness --------------------------------------------------------

Segment access_segment(SegId id, uint64_t wlo, uint64_t whi, uint64_t rlo = 0,
                       uint64_t rhi = 0) {
  Segment seg;
  seg.id = id;
  seg.kind = SegKind::kTask;
  if (whi > wlo) seg.writes.add(wlo, whi, {1, 1});
  if (rhi > rlo) seg.reads.add(rlo, rhi, {1, 2});
  seg.finalize_fingerprints();
  return seg;
}

TEST(PairBatch, ScreenVerdictsAreProvable) {
  // Query writes page 1 and reads page 8 (4 KiB pages).
  const Segment query =
      access_segment(1, 0x1000, 0x1100, 0x8000, 0x8010);
  const CandidateBatch::Footprint q(query);

  CandidateBatch batch;
  // Overlapping bytes: must survive every screen configuration.
  batch.push(access_segment(2, 0x1080, 0x1090));
  // Bbox-disjoint: above the query's [0x1000, 0x8010) box.
  batch.push(access_segment(3, 0x100000, 0x100100));
  // Bbox-overlapping but page-disjoint (page 3): fingerprint-screenable.
  batch.push(access_segment(4, 0x3000, 0x3008));
  // Read-only candidate on the query's read page: two reads never
  // conflict, so the conflict mask is zero even though bytes overlap.
  batch.push(access_segment(5, 0, 0, 0x8000, 0x8010));

  std::vector<uint8_t> verdicts;
  batch.screen(q, 0, batch.size(), /*check_bbox=*/true, /*check_fp=*/true,
               verdicts);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0], CandidateBatch::kSurvive);
  EXPECT_EQ(verdicts[1], CandidateBatch::kBboxDisjoint);
  EXPECT_EQ(verdicts[2], CandidateBatch::kFpDisjoint);
  EXPECT_EQ(verdicts[3], CandidateBatch::kFpDisjoint);

  // Gates are independent: with a filter off, its verdict may not be used.
  batch.screen(q, 0, batch.size(), false, true, verdicts);
  EXPECT_EQ(verdicts[1], CandidateBatch::kFpDisjoint);  // boxes ignored
  batch.screen(q, 0, batch.size(), true, false, verdicts);
  EXPECT_EQ(verdicts[2], CandidateBatch::kSurvive);
  batch.screen(q, 0, batch.size(), false, false, verdicts);
  for (const uint8_t v : verdicts) {
    EXPECT_EQ(v, CandidateBatch::kSurvive);
  }
}

TEST(PairBatch, ClearedBitmapScreensAsAllOnes) {
  // Round-trip the candidate through the wire: IntervalSet::deserialize
  // leaves the incremental level-0 bitmap reset, which the batch must
  // substitute with all-ones - the screen may pass such an entry through,
  // never prove it disjoint.
  const Segment original = access_segment(4, 0x3000, 0x3008);
  std::vector<uint8_t> image;
  encode_segment(original, image);
  Segment decoded;
  std::string error;
  ASSERT_TRUE(decode_segment(image, decoded, &error)) << error;
  ASSERT_FALSE(decoded.writes.empty());

  const Segment query =
      access_segment(1, 0x1000, 0x1100, 0x8000, 0x8010);
  CandidateBatch batch;
  batch.push(decoded);
  std::vector<uint8_t> verdicts;
  batch.screen(CandidateBatch::Footprint(query), 0, batch.size(), true, true,
               verdicts);
  // Page-disjoint in truth (page 3 vs pages 1 and 8), but the screen no
  // longer has trustworthy words - it must keep the pair.
  EXPECT_EQ(verdicts[0], CandidateBatch::kSurvive);

  // The same substitution applies to a query built from decoded arenas.
  CandidateBatch fresh;
  fresh.push(access_segment(4, 0x3000, 0x3008));
  fresh.screen(CandidateBatch::Footprint(decoded), 0, fresh.size(), true,
               true, verdicts);
  EXPECT_EQ(verdicts[0], CandidateBatch::kSurvive);
}

// --- scalar vs SIMD differential ---------------------------------------------

/// Restores auto dispatch however the test exits.
struct KernelGuard {
  ~KernelGuard() {
    CandidateBatch::set_screen_kernel(CandidateBatch::ScreenKernel::kAuto);
  }
};

/// Random access-bearing segment. One in eight lives near the top of the
/// address space (sign bit set) so the kernel's unsigned bbox comparison is
/// exercised on both sides of the signed/unsigned divide.
Segment random_access_segment(std::mt19937_64& rng, SegId id) {
  Segment seg;
  seg.id = id;
  seg.kind = SegKind::kTask;
  const uint64_t base =
      (rng() & 7) == 0 ? 0x8000000000000000ull : 0x1000ull;
  const auto span = [&](IntervalSet& side) {
    const uint64_t lo = base + rng() % 0x40000;
    side.add(lo, lo + 1 + rng() % 0x4000, {1, 1});
  };
  const uint32_t nw = static_cast<uint32_t>(rng() % 3);
  const uint32_t nr = static_cast<uint32_t>(rng() % 3);
  for (uint32_t i = 0; i < nw; ++i) span(seg.writes);
  for (uint32_t i = 0; i < nr; ++i) span(seg.reads);
  seg.finalize_fingerprints();
  return seg;
}

TEST(PairBatch, SimdVerdictsAreBitIdenticalToScalarFuzz) {
  if (!CandidateBatch::simd_supported()) {
    GTEST_SKIP() << "no AVX2 on this host; the scalar loop is the only "
                    "kernel and trivially agrees with itself";
  }
  KernelGuard guard;
  std::mt19937_64 rng(0x7a5c9d31u);
  std::vector<uint8_t> scalar_verdicts;
  std::vector<uint8_t> simd_verdicts;
  for (int iter = 0; iter < 300; ++iter) {
    // Batch sizes cover empty, sub-lane and non-multiple-of-4 tails.
    const size_t n = rng() % 19;
    CandidateBatch batch;
    for (size_t i = 0; i < n; ++i) {
      Segment seg = random_access_segment(rng, static_cast<SegId>(i + 2));
      if ((rng() & 3) == 0 && seg.has_accesses()) {
        // Wire round-trip: the decoded arenas carry reset incremental
        // bitmaps, so push() stores all-ones words (the cleared-bitmap
        // rule) - the kernels must agree on those too.
        std::vector<uint8_t> image;
        encode_segment(seg, image);
        Segment decoded;
        std::string error;
        ASSERT_TRUE(decode_segment(image, decoded, &error)) << error;
        batch.push(decoded);
      } else {
        batch.push(seg);
      }
    }
    CandidateBatch::Footprint query(random_access_segment(rng, 1));
    if ((rng() & 7) == 0) {
      // Raw adversarial footprint: arbitrary box and words, including the
      // inverted-box shapes no real segment produces.
      query.lo = rng();
      query.hi = rng();
      for (uint32_t k = 0; k < kFingerprintWords; ++k) {
        query.w[k] = rng() & rng();
        query.r[k] = rng() & rng();
      }
    }
    const size_t begin = n == 0 ? 0 : rng() % (n + 1);
    const size_t end = begin + (n - begin == 0 ? 0 : rng() % (n - begin + 1));
    const bool check_bbox = (rng() & 1) != 0;
    const bool check_fp = (rng() & 1) != 0;

    CandidateBatch::set_screen_kernel(CandidateBatch::ScreenKernel::kScalar);
    ASSERT_EQ(CandidateBatch::active_kernel(),
              CandidateBatch::ScreenKernel::kScalar);
    batch.screen(query, begin, end, check_bbox, check_fp, scalar_verdicts);

    CandidateBatch::set_screen_kernel(CandidateBatch::ScreenKernel::kSimd);
    ASSERT_EQ(CandidateBatch::active_kernel(),
              CandidateBatch::ScreenKernel::kSimd);
    batch.screen(query, begin, end, check_bbox, check_fp, simd_verdicts);

    ASSERT_EQ(scalar_verdicts, simd_verdicts)
        << "iter " << iter << " n=" << n << " [" << begin << ", " << end
        << ") bbox=" << check_bbox << " fp=" << check_fp;
  }
}

TEST(PairBatch, ForcedSimdClampsToScalarWhenUnsupported) {
  KernelGuard guard;
  CandidateBatch::set_screen_kernel(CandidateBatch::ScreenKernel::kSimd);
  if (CandidateBatch::simd_supported()) {
    EXPECT_EQ(CandidateBatch::active_kernel(),
              CandidateBatch::ScreenKernel::kSimd);
  } else {
    EXPECT_EQ(CandidateBatch::active_kernel(),
              CandidateBatch::ScreenKernel::kScalar);
  }
  CandidateBatch::set_screen_kernel(CandidateBatch::ScreenKernel::kScalar);
  EXPECT_EQ(CandidateBatch::active_kernel(),
            CandidateBatch::ScreenKernel::kScalar);
}

TEST(PairBatch, EditingOperationsKeepArraysAligned) {
  CandidateBatch batch;
  for (SegId id = 1; id <= 6; ++id) {
    batch.push(access_segment(id, 0x1000 * id, 0x1000 * id + 8));
  }
  batch.erase_prefix(2);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.id(0), 3u);
  batch.swap_remove(0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.id(0), 6u);

  // The surviving entries still screen with their own footprints: entry 6
  // overlaps a query at its window, entries 4 and 5 are box-disjoint.
  const Segment query = access_segment(9, 0x6000, 0x6008);
  std::vector<uint8_t> verdicts;
  batch.screen(CandidateBatch::Footprint(query), 0, batch.size(), true, true,
               verdicts);
  EXPECT_EQ(verdicts[0], CandidateBatch::kSurvive);
  EXPECT_EQ(verdicts[1], CandidateBatch::kBboxDisjoint);
  EXPECT_EQ(verdicts[2], CandidateBatch::kBboxDisjoint);
}

}  // namespace
}  // namespace tg::core
