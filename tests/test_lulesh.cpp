// mini-LULESH tests: numerical agreement with the host reference, the
// racy-variant detection, parameter handling and scaling behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lulesh/lulesh.hpp"
#include "tools/session.hpp"

namespace tg::lulesh {
namespace {

using tools::SessionOptions;
using tools::SessionResult;
using tools::ToolKind;

SessionResult run_lulesh(const LuleshParams& params, ToolKind tool,
                         int threads, uint64_t seed = 1) {
  const rt::GuestProgram program = make_lulesh(params);
  SessionOptions options;
  options.tool = tool;
  options.num_threads = threads;
  options.seed = seed;
  return tools::run_session(program, options);
}

double parse_energy(const std::string& output) {
  const auto pos = output.rfind("final origin energy=");
  EXPECT_NE(pos, std::string::npos) << output;
  return std::strtod(output.c_str() + pos + 20, nullptr);
}

class LuleshSizes : public ::testing::TestWithParam<int> {};

TEST_P(LuleshSizes, MatchesHostReference) {
  LuleshParams params;
  params.s = GetParam();
  params.iters = 3;
  const auto result = run_lulesh(params, ToolKind::kNone, 1);
  ASSERT_EQ(result.status, SessionResult::Status::kOk);
  const double guest = parse_energy(result.output);
  const double host = reference_origin_energy(params);
  EXPECT_NEAR(guest, host, std::abs(host) * 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuleshSizes, ::testing::Values(2, 4, 6, 8));

TEST(Lulesh, DeterministicAcrossThreadCounts) {
  // The dependence structure makes the computation deterministic: any team
  // size yields the same answer.
  LuleshParams params;
  params.s = 6;
  params.iters = 4;
  const auto t1 = run_lulesh(params, ToolKind::kNone, 1);
  const auto t4 = run_lulesh(params, ToolKind::kNone, 4);
  EXPECT_EQ(parse_energy(t1.output), parse_energy(t4.output));
}

TEST(Lulesh, CorrectVariantIsRaceFree) {
  LuleshParams params;
  params.s = 6;
  for (int threads : {1, 4}) {
    const auto result = run_lulesh(params, ToolKind::kTaskgrind, threads);
    EXPECT_FALSE(result.racy())
        << threads << " threads: " << result.report_texts.front();
  }
}

TEST(Lulesh, RacyVariantIsDetectedAtOneThread) {
  // Table II's key row: the paper's Taskgrind finds 458 reports on the
  // racy run with one thread (where Archer finds none).
  LuleshParams params;
  params.s = 6;
  params.racy = true;
  const auto taskgrind = run_lulesh(params, ToolKind::kTaskgrind, 1);
  EXPECT_TRUE(taskgrind.racy());
  const auto archer = run_lulesh(params, ToolKind::kArcher, 1);
  EXPECT_FALSE(archer.racy());  // Archer's single-thread blindness
}

TEST(Lulesh, RacyReportNamesTheForceArray) {
  LuleshParams params;
  params.s = 4;
  params.racy = true;
  const auto result = run_lulesh(params, ToolKind::kTaskgrind, 1);
  ASSERT_TRUE(result.racy());
  // Phase B writes (line 230) vs phase C reads (line 300) of f[].
  EXPECT_NE(result.report_texts[0].find("lulesh.cc:230"), std::string::npos)
      << result.report_texts[0];
  EXPECT_NE(result.report_texts[0].find("lulesh.cc:300"), std::string::npos);
}

TEST(Lulesh, AnnotationRequiredSingleThread) {
  LuleshParams params;
  params.s = 4;
  params.racy = true;
  params.annotate_deferrable = false;  // drop the §V-B client request
  const auto result = run_lulesh(params, ToolKind::kTaskgrind, 1);
  EXPECT_FALSE(result.racy());  // serialized tasks look ordered
}

TEST(Lulesh, WorkScalesCubically) {
  LuleshParams small, big;
  small.s = 4;
  big.s = 8;
  const auto a = run_lulesh(small, ToolKind::kNone, 1);
  const auto b = run_lulesh(big, ToolKind::kNone, 1);
  const double ratio =
      static_cast<double>(b.retired) / static_cast<double>(a.retired);
  // 8^3 / 4^3 = 8; allow generous slack for fixed costs.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(Lulesh, TaskCountsFollowTelTnl) {
  LuleshParams params;
  params.s = 4;
  params.tel = 2;
  params.tnl = 3;
  params.iters = 2;
  const auto result = run_lulesh(params, ToolKind::kNone, 2);
  // Per iteration: tel(A) + tnl(B) + tnl(C) + tel(D) = 2+3+3+2 = 10 tasks,
  // x2 iterations, + 1 root + nthreads implicit tasks.
  EXPECT_EQ(result.tasks_created, 2u * 10u + 1u + 2u);
}

TEST(Lulesh, ProgressTaskPrintsPerIteration) {
  LuleshParams params;
  params.s = 2;
  params.iters = 3;
  params.progress = true;
  const auto result = run_lulesh(params, ToolKind::kNone, 2);
  size_t count = 0;
  size_t pos = 0;
  while ((pos = result.output.find("cycle energy=", pos)) !=
         std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Lulesh, ArcherRacyReportsVaryAcrossSeedsAt4Threads) {
  LuleshParams params;
  params.s = 6;
  params.racy = true;
  size_t lo = SIZE_MAX, hi = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const auto result = run_lulesh(params, ToolKind::kArcher, 4, seed);
    lo = std::min(lo, result.raw_report_count);
    hi = std::max(hi, result.raw_report_count);
  }
  EXPECT_GT(hi, 0u);  // the race is observable at 4 threads
}

}  // namespace
}  // namespace tg::lulesh
