// Dense-graph scalability differential: the dense-mesh generator
// (core/dense_mesh) defeats the 1-D bounding-box sweep by construction, so
// it is the workload where frontier-bounded pair generation must show its
// bound - and where it must not change a single finding.
//
// Three claims, each checked against the engine's own funnel counters:
//
//  1. Identity: findings (canonical dedup-key digest) are byte-identical
//     across post-mortem, streaming with the frontier, and streaming with
//     --no-frontier-pairs, at every size and worker count.
//  2. Conservation: generated + never-generated pairs add up to the exact
//     pair universe n*(n-1)/2 in every configuration (the engines also
//     TG_ASSERT this internally; asserting here keeps the claim visible).
//  3. Boundedness: pairs generated per closed segment stays flat as the
//     mesh grows 1k -> 100k segments with the frontier on, while legacy
//     enumeration grows with the live window (~sqrt of the mesh size, by
//     the laggard-period construction).
#include <gtest/gtest.h>

#include <string>

#include "core/dense_mesh.hpp"

namespace tg::core {
namespace {

AnalysisOptions mesh_options(bool frontier, int threads) {
  AnalysisOptions options;
  options.use_frontier_pairs = frontier;
  options.threads = threads;
  return options;
}

uint64_t universe(const AnalysisStats& stats) {
  return stats.segments_active * (stats.segments_active - 1) / 2;
}

void expect_conserved(const AnalysisStats& stats, const std::string& label) {
  EXPECT_EQ(stats.pairs_never_generated + stats.pairs_total, universe(stats))
      << label;
  EXPECT_EQ(stats.pairs_total,
            stats.pairs_region_fast + stats.pairs_ordered +
                stats.pairs_mutex + stats.pairs_skipped_bbox +
                stats.pairs_skipped_fingerprint + stats.pairs_scanned)
      << label;
}

double pairs_per_close(const AnalysisStats& stats) {
  return static_cast<double>(stats.pairs_total) /
         static_cast<double>(stats.segments_active);
}

TEST(DenseMesh, FindingsIdenticalAcrossEnginesAndModes) {
  // Post-mortem oracle sizes only: Algorithm 1 pays ~2us per ordered()
  // query on this mesh and same-lane pairs always box-overlap, so the
  // whole-graph pass goes quadratic (10k segments ~ 1e7 generated pairs,
  // ~18s) - which is the measured motivation for the streaming frontier.
  // The 10k/100k identity legs below chain off streaming-legacy instead,
  // itself proven identical to post-mortem here.
  for (const uint64_t segments : {1000u, 3000u}) {
    const DenseMeshSpec spec = DenseMeshSpec::for_segments(segments);
    const std::string size = "n=" + std::to_string(segments);

    const DenseMeshRun oracle =
        run_dense_mesh(spec, mesh_options(true, 1), /*streaming=*/false);
    ASSERT_FALSE(oracle.result.reports.empty()) << size;
    expect_conserved(oracle.result.stats, size + " post-mortem");

    for (const bool frontier : {true, false}) {
      for (const int threads : {1, 4}) {
        const std::string label = size + (frontier ? " frontier" : " legacy") +
                                  " @" + std::to_string(threads);
        const DenseMeshRun streamed = run_dense_mesh(
            spec, mesh_options(frontier, threads), /*streaming=*/true);
        EXPECT_EQ(streamed.identity, oracle.identity) << label;
        ASSERT_EQ(streamed.result.reports.size(),
                  oracle.result.reports.size())
            << label;
        for (size_t i = 0; i < oracle.result.reports.size(); ++i) {
          EXPECT_EQ(streamed.result.reports[i].summary(),
                    oracle.result.reports[i].summary())
              << label << " report " << i;
        }
        expect_conserved(streamed.result.stats, label);
        EXPECT_EQ(streamed.result.stats.segments_active,
                  oracle.result.stats.segments_active)
            << label;
      }
    }
  }
}

TEST(DenseMesh, FrontierStaysBoundedAsTheMeshGrows) {
  // Streaming-only at the top size: the post-mortem sweep degenerates to
  // O(n^2 / lanes) generated pairs on this workload (the motivation), so
  // the 100k oracle is the legacy streaming mode, itself proven identical
  // to post-mortem at the smaller sizes above.
  double frontier_small = 0.0;
  double legacy_small = 0.0;
  for (const uint64_t segments : {1000u, 10000u, 100000u}) {
    const DenseMeshSpec spec = DenseMeshSpec::for_segments(segments);
    const std::string size = "n=" + std::to_string(segments);

    const DenseMeshRun frontier =
        run_dense_mesh(spec, mesh_options(true, 4), /*streaming=*/true);
    const DenseMeshRun legacy =
        run_dense_mesh(spec, mesh_options(false, 4), /*streaming=*/true);
    EXPECT_EQ(frontier.identity, legacy.identity) << size;
    expect_conserved(frontier.result.stats, size + " frontier");
    expect_conserved(legacy.result.stats, size + " legacy");
    // Both modes prune the same universe; the frontier only moves pairs
    // from the generated buckets into pairs_never_generated.
    EXPECT_EQ(frontier.result.stats.segments_active,
              legacy.result.stats.segments_active)
        << size;
    EXPECT_LE(frontier.result.stats.pairs_total,
              legacy.result.stats.pairs_total)
        << size;
    // Deferred pairs survive identical filters in both modes.
    EXPECT_EQ(frontier.result.stats.pairs_deferred,
              legacy.result.stats.pairs_deferred)
        << size;

    const double per_close_frontier = pairs_per_close(frontier.result.stats);
    const double per_close_legacy = pairs_per_close(legacy.result.stats);
    if (segments == 1000u) {
      frontier_small = per_close_frontier;
      legacy_small = per_close_legacy;
      continue;
    }
    if (segments == 100000u) {
      // Flat across two decades: the frontier's per-close candidate count
      // depends on the mesh width, not its length.
      EXPECT_LE(per_close_frontier, 2.0 * frontier_small) << size;
      // The legacy window grows ~sqrt(n) by construction (laggard period
      // = sqrt(steps)), so per-close generation must have grown clearly -
      // this guards the experiment itself against a generator regression
      // that would make the boundedness claim vacuous.
      EXPECT_GE(per_close_legacy, 3.0 * legacy_small) << size;
    }
  }
}

TEST(DenseMesh, GovernorAndRaceFreeLegsPreserveIdentity) {
  // Streaming oracle: FindingsIdenticalAcrossEnginesAndModes already pins
  // streaming to the post-mortem pass, and the 10k post-mortem run is the
  // quadratic wall this generator exists to demonstrate.
  const DenseMeshSpec spec = DenseMeshSpec::for_segments(10000);
  const DenseMeshRun oracle =
      run_dense_mesh(spec, mesh_options(true, 2), /*streaming=*/true);

  // Memory-pressure governor leg: a tree-byte ceiling well under the
  // ungoverned high-water mark (~80KB on this mesh) forces spills mid-run;
  // findings and the funnel partition must not move.
  for (const bool frontier : {true, false}) {
    AnalysisOptions governed = mesh_options(frontier, 2);
    governed.max_tree_bytes = 32 << 10;
    const DenseMeshRun run =
        run_dense_mesh(spec, governed, /*streaming=*/true);
    const std::string label =
        std::string("governed ") + (frontier ? "frontier" : "legacy");
    EXPECT_EQ(run.identity, oracle.identity) << label;
    expect_conserved(run.result.stats, label);
    // (peak_tree_bytes is a process-global accountant high-water mark, so
    // it cannot be compared across runs within one test binary; spill and
    // reload counters are per-run.)
    EXPECT_GT(run.result.stats.segments_spilled, 0u) << label;
    EXPECT_GT(run.result.stats.spill_bytes_written, 0u) << label;
  }

  // Race-free mesh: the same topology minus the deliberate races must be
  // clean in every mode - the halo exchange's full/empty handshake really
  // does order read-then-rewrite in both directions.
  DenseMeshSpec clean = DenseMeshSpec::for_segments(3000);
  clean.racy = false;
  for (const bool streaming : {false, true}) {
    for (const bool frontier : {true, false}) {
      const DenseMeshRun run =
          run_dense_mesh(clean, mesh_options(frontier, 2), streaming);
      EXPECT_TRUE(run.result.reports.empty())
          << (streaming ? "streaming" : "post-mortem")
          << (frontier ? " frontier" : " legacy");
      expect_conserved(run.result.stats, "clean");
    }
  }
}

}  // namespace
}  // namespace tg::core
