// Second round of minivex coverage: translation-cache lifecycle, frame
// location, host-call plumbing, attribution of host-side accesses, realloc,
// instruction-budget handling and arithmetic edge cases.
#include <gtest/gtest.h>

#include "support/accounting.hpp"
#include "vex/builder.hpp"
#include "vex/stdlib.hpp"
#include "vex/vm.hpp"

namespace tg::vex {
namespace {

class NullIntrinsics : public IntrinsicHandler {
 public:
  Result on_intrinsic(HostCtx&, IntrinsicId, std::span<const Value>,
                      std::span<const int64_t>) override {
    return Result::cont();
  }
};

class AccessLog : public Tool {
 public:
  std::string_view name() const override { return "log"; }
  InstrumentationSet instrumentation_for(const Function& fn) override {
    consults++;
    return filter == nullptr || filter(fn) ? InstrumentationSet::accesses()
                                           : InstrumentationSet::none();
  }
  void on_load(ThreadCtx&, GuestAddr addr, uint32_t, SrcLoc loc) override {
    loads.emplace_back(addr, loc.line);
  }
  void on_store(ThreadCtx&, GuestAddr addr, uint32_t, SrcLoc loc) override {
    stores.emplace_back(addr, loc.line);
  }

  bool (*filter)(const Function&) = nullptr;
  int consults = 0;
  std::vector<std::pair<GuestAddr, uint32_t>> loads;
  std::vector<std::pair<GuestAddr, uint32_t>> stores;
};

struct Machine {
  explicit Machine(Program p) : program(std::move(p)), vm(program) {
    vm.set_intrinsic_handler(&intrinsics);
    thread = &vm.create_thread();
  }

  RunResult run(uint64_t budget = 1'000'000) {
    if (!started) {
      vm.push_call(*thread, program.entry, {});
      started = true;
    }
    return vm.run(*thread, 0, budget);
  }

  Program program;
  Vm vm;
  NullIntrinsics intrinsics;
  ThreadCtx* thread = nullptr;
  bool started = false;
};

TEST(Vm2, BudgetExhaustionResumesCleanly) {
  ProgramBuilder pb("budget");
  FnBuilder& f = pb.fn("main", "t.c");
  Slot sum = f.slot();
  sum.set(0);
  f.for_(0, 1000, [&](Slot i) { sum.set(sum.get() + i.get()); });
  f.ret(sum.get());
  Machine m(pb.take());
  int slices = 0;
  while (m.run(100) == RunResult::kBudget) {
    ++slices;
    ASSERT_LT(slices, 10'000);
  }
  EXPECT_GT(slices, 5);  // it genuinely ran in slices
  EXPECT_EQ(m.thread->last_return.i, 999 * 1000 / 2);
}

TEST(Vm2, RetoolFlushesTranslations) {
  ProgramBuilder pb("retool");
  FnBuilder& f = pb.fn("main", "t.c");
  Slot x = f.slot();
  x.set(5);
  f.ret(x.get());
  Machine m(pb.take());

  AccessLog first;
  m.vm.set_tool(&first);
  m.run();
  EXPECT_GT(first.stores.size() + first.loads.size(), 0u);

  // New tool, fresh thread, fresh translations: the new tool is consulted
  // and receives the events instead.
  AccessLog second;
  m.vm.set_tool(&second);
  ThreadCtx& t2 = m.vm.create_thread();
  m.vm.push_call(t2, m.program.entry, {});
  m.vm.run(t2, 0, 1'000'000);
  EXPECT_GT(second.consults, 0);
  EXPECT_GT(second.stores.size(), 0u);
}

TEST(Vm2, LocateStackFrameFindsLiveFrames) {
  ProgramBuilder pb("frames");
  FnBuilder& inner = pb.fn("inner", "t.c", 1);
  {
    Slot local = inner.slot();
    local.set(inner.param(0));
    inner.ret(local.addr());  // leak the address upward (for the test)
  }
  FnBuilder& f = pb.fn("main", "t.c");
  Slot here = f.slot();
  here.set(1);
  V escaped = f.call("inner", {f.c(7)});
  f.ret(escaped);
  Machine m(pb.take());
  m.run();

  // After return, inner's frame is dead: its slot address must not
  // resolve. The live main frame is gone too (program finished), so both
  // lookups fail; instead check mid-execution via a host fn.
  Vm::FrameLoc loc;
  EXPECT_FALSE(m.vm.locate_stack_frame(
      static_cast<GuestAddr>(m.thread->last_return.u), loc));
}

TEST(Vm2, LocateStackFrameDuringExecution) {
  ProgramBuilder pb("frames2");
  struct Probe {
    Vm* vm = nullptr;
    bool found_own = false;
    bool found_caller = false;
    uint64_t inner_inc = 0;
    uint64_t outer_inc = 0;
  };
  static Probe probe;
  probe = {};

  pb.host_fn("probe", [](HostCtx& ctx, std::span<const Value> args) {
    Vm::FrameLoc inner_loc, outer_loc;
    probe.found_own = ctx.vm.locate_stack_frame(args[0].u, inner_loc);
    probe.found_caller = ctx.vm.locate_stack_frame(args[1].u, outer_loc);
    probe.inner_inc = inner_loc.incarnation;
    probe.outer_inc = outer_loc.incarnation;
    return Value{};
  });

  FnBuilder& inner = pb.fn("inner", "t.c", 1);
  {
    Slot mine = inner.slot();
    mine.set(1);
    inner.call("probe", {mine.addr(), inner.param(0)});
    inner.ret();
  }
  FnBuilder& f = pb.fn("main", "t.c");
  Slot outer = f.slot();
  outer.set(2);
  f.call("inner", {outer.addr()});
  f.ret(f.c(0));
  Machine m(pb.take());
  m.run();
  EXPECT_TRUE(probe.found_own);
  EXPECT_TRUE(probe.found_caller);
  EXPECT_NE(probe.inner_inc, probe.outer_inc);  // distinct activations
  EXPECT_GT(probe.inner_inc, probe.outer_inc);  // pushed later
}

TEST(Vm2, HostAccessAttributionFollowsSymbolKind) {
  ProgramBuilder pb("attrib");
  install_stdlib(pb);
  FnBuilder& f = pb.fn("main", "t.c");
  V p = f.malloc_(f.c(16));
  f.call("memset", {p, f.c(1), f.c(16)});  // libc-side stores
  f.st(p, f.c(2));                         // user store
  f.ret(f.c(0));

  // User-only filter: sees exactly the one user store (plus user loads).
  AccessLog user_only;
  user_only.filter = [](const Function& fn) {
    return fn.kind == FnKind::kUser;
  };
  Machine m(pb.take());
  m.vm.set_tool(&user_only);
  m.run();
  EXPECT_EQ(user_only.stores.size(), 1u);

  // Everything-filter: sees the 16 memset stores too.
  ProgramBuilder pb2("attrib2");
  install_stdlib(pb2);
  FnBuilder& f2 = pb2.fn("main", "t.c");
  V p2 = f2.malloc_(f2.c(16));
  f2.call("memset", {p2, f2.c(1), f2.c(16)});
  f2.st(p2, f2.c(2));
  f2.ret(f2.c(0));
  AccessLog everything;
  Machine m2(pb2.take());
  m2.vm.set_tool(&everything);
  m2.run();
  EXPECT_EQ(everything.stores.size(), 17u);
}

TEST(Vm2, ReallocPreservesPrefix) {
  ProgramBuilder pb("realloc");
  install_stdlib(pb);
  FnBuilder& f = pb.fn("main", "t.c");
  V p = f.malloc_(f.c(8));
  f.st(p, f.c(0x1234));
  V q = f.call("realloc", {p, f.c(64)});
  f.ret(f.ld(q));
  Machine m(pb.take());
  m.run();
  EXPECT_EQ(m.thread->last_return.i, 0x1234);
}

TEST(Vm2, ShiftAmountsMaskedTo64) {
  ProgramBuilder pb("shift");
  FnBuilder& f = pb.fn("main", "t.c");
  V one = f.c(1);
  // shl by 65 == shl by 1 (masked), matching x86 semantics.
  f.ret(f.shl(one, f.c(65)));
  Machine m(pb.take());
  m.run();
  EXPECT_EQ(m.thread->last_return.i, 2);
}

TEST(Vm2, SignedDivisionTruncatesTowardZero) {
  ProgramBuilder pb("div");
  FnBuilder& f = pb.fn("main", "t.c");
  V a = f.c(-7);
  V b = f.c(2);
  f.ret(a / b * f.c(10) + a % b);  // -3 * 10 + -1 = -31
  Machine m(pb.take());
  m.run();
  EXPECT_EQ(m.thread->last_return.i, -31);
}

TEST(Vm2, SubWordStoresZeroExtendOnLoad) {
  ProgramBuilder pb("subword");
  FnBuilder& f = pb.fn("main", "t.c");
  Slot x = f.slot();
  x.set(-1);  // all ones
  f.st(x.addr(), f.c(0xAB), 1);  // overwrite the low byte
  f.ret(f.ld(x.addr(), 1) + f.ld(x.addr(), 2));
  Machine m(pb.take());
  m.run();
  EXPECT_EQ(m.thread->last_return.i, 0xAB + 0xFFAB);
}

TEST(Vm2, MultipleTlsModules) {
  ProgramBuilder pb("tlsmod");
  pb.tls_var("a", 8);
  FnBuilder& f = pb.fn("main", "t.c");
  f.ret(f.c(0));
  Program program = pb.take();
  program.tls_module_sizes.push_back(32);  // a second (dlopened) module
  Vm vm(program);
  ThreadCtx& t = vm.create_thread();
  const GuestAddr m0 = vm.resolve_tls(t, 0, 0);
  const uint64_t gen_after_m0 = t.dtv.gen;
  const GuestAddr m1 = vm.resolve_tls(t, 1, 8);
  EXPECT_NE(m0, m1);
  EXPECT_GT(t.dtv.gen, gen_after_m0);  // lazy module load bumped the gen
  EXPECT_EQ(t.dtv.blocks.size(), 2u);
}

TEST(Vm2, OutputAppendsAcrossCalls) {
  ProgramBuilder pb("out");
  install_stdlib(pb);
  FnBuilder& f = pb.fn("main", "t.c");
  f.print_str("a");
  f.print_i64(f.c(1));
  f.print_str("b");
  f.ret(f.c(0));
  Machine m(pb.take());
  m.run();
  EXPECT_EQ(m.vm.output(), "a1b");
}

TEST(Vm2, GuestMemoryAccountingReleasedOnDestruction) {
  MemAccountant::instance().reset();
  {
    ProgramBuilder pb("acct");
    FnBuilder& f = pb.fn("main", "t.c");
    Slot x = f.slot();
    x.set(1);
    f.ret(x.get());
    Machine m(pb.take());
    m.run();
    EXPECT_GT(MemAccountant::instance().category_bytes(
                  MemCategory::kGuestMemory),
              0);
  }
  EXPECT_EQ(
      MemAccountant::instance().category_bytes(MemCategory::kGuestMemory),
      0);
}

TEST(Vm2, CallHostInvokesDirectly) {
  ProgramBuilder pb("callhost");
  const FuncId doubler =
      pb.host_fn("doubler", [](HostCtx&, std::span<const Value> args) {
        return Value::from_i(args[0].i * 2);
      });
  FnBuilder& f = pb.fn("main", "t.c");
  f.ret(f.c(0));
  Machine m(pb.take());
  Value arg = Value::from_i(21);
  const Value result =
      m.vm.call_host(*m.thread, doubler, std::span<const Value>(&arg, 1), {});
  EXPECT_EQ(result.i, 42);
}

TEST(Vm2, HaltFromNestedCallUnwindsRun) {
  ProgramBuilder pb("halt");
  FnBuilder& inner = pb.fn("inner", "t.c", 0);
  inner.halt(inner.c(9));
  FnBuilder& f = pb.fn("main", "t.c");
  f.call("inner", {});
  f.ret(f.c(0));
  Machine m(pb.take());
  EXPECT_EQ(m.run(), RunResult::kHalted);
  EXPECT_EQ(m.vm.exit_code(), 9);
}

}  // namespace
}  // namespace tg::vex
