// Record -> replay differential hardening of the schedule trace subsystem.
//
// A recorded run and its replay must agree on everything observable: the
// schedule event stream (consumed to the last event, no divergence), the
// findings, and the canonical JSON byte-for-byte. Covered inputs: the full
// guest-program registry and a sweep of random dependence/taskwait programs
// at 1/2/4/8 workers, with and without streaming, plus replay under the
// --max-tree-bytes spill governor. The serializer is hardened separately:
// exact byte accounting, and rejection of every truncation, bit corruption
// and wrong-program misuse.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/trace.hpp"
#include "programs/registry.hpp"
#include "random_program.hpp"
#include "tools/session.hpp"

namespace tg::tools {
namespace {

SessionResult record_run(const rt::GuestProgram& program, int num_threads,
                         core::ScheduleTrace& trace, bool streaming = true) {
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = num_threads;
  options.taskgrind.streaming = streaming;
  options.taskgrind.analysis_threads = 2;
  options.record_into = &trace;
  return run_session(program, options);
}

SessionResult replay_run(const rt::GuestProgram& program,
                         const core::ScheduleTrace& trace,
                         bool streaming = true) {
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  // Deliberately NOT copying num_threads/seed: replay must take them from
  // the trace header.
  options.taskgrind.streaming = streaming;
  options.taskgrind.analysis_threads = 2;
  options.replay_from = &trace;
  return run_session(program, options);
}

void expect_replay_identical(const rt::GuestProgram& program,
                             int num_threads, const std::string& label) {
  core::ScheduleTrace trace;
  const SessionResult recorded = record_run(program, num_threads, trace);
  ASSERT_EQ(recorded.status, SessionResult::Status::kOk) << label;
  EXPECT_EQ(recorded.schedule_events, trace.events.size()) << label;

  const SessionResult replayed = replay_run(program, trace);
  ASSERT_EQ(replayed.status, SessionResult::Status::kOk)
      << label << ": " << replayed.error;
  // The whole stream was consumed - divergence or shortfall would have
  // flipped the status to kConfig.
  EXPECT_EQ(replayed.schedule_events, trace.events.size()) << label;

  const std::string canonical_recorded =
      session_json(SessionOptions{}, recorded, /*canonical=*/true);
  const std::string canonical_replayed =
      session_json(SessionOptions{}, replayed, /*canonical=*/true);
  EXPECT_EQ(canonical_recorded, canonical_replayed) << label;
}

TEST(TraceReplay, RegistryPrograms) {
  for (const rt::GuestProgram& program : progs::all_programs()) {
    for (int threads : {1, 2, 4, 8}) {
      expect_replay_identical(
          program, threads,
          program.name + " @" + std::to_string(threads) + " workers");
    }
  }
}

TEST(TraceReplay, RandomPrograms) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const progs::RandomProgram spec = progs::RandomProgram::generate(seed);
    const rt::GuestProgram program = spec.to_guest(seed);
    for (int threads : {2, 4}) {
      expect_replay_identical(
          program, threads,
          "random seed " + std::to_string(seed) + " @" +
              std::to_string(threads));
    }
  }
}

// Post-mortem (non-streaming) record/replay: same contract.
TEST(TraceReplay, PostMortemMode) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  for (int threads : {1, 2, 4, 8}) {
    core::ScheduleTrace trace;
    const SessionResult recorded =
        record_run(*program, threads, trace, /*streaming=*/false);
    ASSERT_EQ(recorded.status, SessionResult::Status::kOk);
    const SessionResult replayed =
        replay_run(*program, trace, /*streaming=*/false);
    ASSERT_EQ(replayed.status, SessionResult::Status::kOk) << replayed.error;
    EXPECT_EQ(session_json(SessionOptions{}, recorded, true),
              session_json(SessionOptions{}, replayed, true));
  }
}

// Canonical output is also identical ACROSS analysis modes: record with
// streaming on, replay the same trace with streaming off (and vice versa) -
// the analysis mode is a tool knob, not part of the schedule.
TEST(TraceReplay, AcrossStreamingModes) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  core::ScheduleTrace trace;
  const SessionResult recorded =
      record_run(*program, 4, trace, /*streaming=*/true);
  ASSERT_EQ(recorded.status, SessionResult::Status::kOk);
  const SessionResult replayed =
      replay_run(*program, trace, /*streaming=*/false);
  ASSERT_EQ(replayed.status, SessionResult::Status::kOk) << replayed.error;
  EXPECT_EQ(session_json(SessionOptions{}, recorded, true),
            session_json(SessionOptions{}, replayed, true));
}

// Replaying under the spill governor: bounding analysis memory must not
// change the schedule or the findings.
TEST(TraceReplay, UnderMaxTreeBytes) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  core::ScheduleTrace trace;
  const SessionResult recorded = record_run(*program, 4, trace);
  ASSERT_EQ(recorded.status, SessionResult::Status::kOk);

  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.taskgrind.streaming = true;
  options.taskgrind.analysis_threads = 2;
  options.taskgrind.max_tree_bytes = 4096;
  options.replay_from = &trace;
  const SessionResult replayed = run_session(*program, options);
  ASSERT_EQ(replayed.status, SessionResult::Status::kOk) << replayed.error;
  EXPECT_EQ(session_json(SessionOptions{}, recorded, true),
            session_json(SessionOptions{}, replayed, true));
}

// A perturbed recording is still a complete witness: the perturbation lands
// in the trace header and the replay reproduces the perturbed schedule.
TEST(TraceReplay, PerturbedRecording) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = 4;
  options.perturbation.steal_rotation = 2;
  options.perturbation.pop_fifo = true;
  options.perturbation.yield_period = 3;
  options.perturbation.yield_limit = 16;
  core::ScheduleTrace trace;
  options.record_into = &trace;
  const SessionResult recorded = run_session(*program, options);
  ASSERT_EQ(recorded.status, SessionResult::Status::kOk);
  EXPECT_EQ(trace.config.perturb, options.perturbation);

  const SessionResult replayed = replay_run(*program, trace);
  ASSERT_EQ(replayed.status, SessionResult::Status::kOk) << replayed.error;
  EXPECT_EQ(session_json(SessionOptions{}, recorded, true),
            session_json(SessionOptions{}, replayed, true));
}

// --- serializer hardening -------------------------------------------------

core::ScheduleTrace make_sample_trace() {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  EXPECT_NE(program, nullptr);
  core::ScheduleTrace trace;
  const SessionResult recorded = record_run(*program, 2, trace);
  EXPECT_EQ(recorded.status, SessionResult::Status::kOk);
  EXPECT_FALSE(trace.events.empty());
  return trace;
}

TEST(TraceFormat, ExactBytesAndRoundTrip) {
  const core::ScheduleTrace trace = make_sample_trace();
  const std::vector<uint8_t> bytes = trace.serialize();
  EXPECT_EQ(bytes.size(), trace.serialized_bytes());

  core::ScheduleTrace back;
  std::string error;
  ASSERT_TRUE(core::ScheduleTrace::deserialize(bytes, back, &error)) << error;
  EXPECT_EQ(back.config, trace.config);
  ASSERT_EQ(back.events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(back.events[i], trace.events[i]) << "event " << i;
  }
  // Re-serialization is byte-identical (the format has one encoding).
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(TraceFormat, FileRoundTrip) {
  const core::ScheduleTrace trace = make_sample_trace();
  const std::string path = ::testing::TempDir() + "trace_roundtrip.tgtrace";
  std::string error;
  ASSERT_TRUE(trace.save(path, &error)) << error;
  core::ScheduleTrace back;
  ASSERT_TRUE(core::ScheduleTrace::load(path, back, &error)) << error;
  EXPECT_EQ(back.serialize(), trace.serialize());
  std::remove(path.c_str());

  EXPECT_FALSE(trace.save("/nonexistent-dir/x.tgtrace", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  core::ScheduleTrace missing;
  EXPECT_FALSE(
      core::ScheduleTrace::load("/nonexistent.tgtrace", missing, &error));
}

TEST(TraceFormat, EveryTruncationRejected) {
  const core::ScheduleTrace trace = make_sample_trace();
  const std::vector<uint8_t> bytes = trace.serialize();
  for (size_t length = 0; length < bytes.size(); ++length) {
    core::ScheduleTrace out;
    std::string error;
    EXPECT_FALSE(core::ScheduleTrace::deserialize(
        std::span(bytes.data(), length), out, &error))
        << "prefix of " << length << " bytes must be rejected";
    EXPECT_FALSE(error.empty());
  }
}

TEST(TraceFormat, EveryBitCorruptionRejected) {
  const core::ScheduleTrace trace = make_sample_trace();
  std::vector<uint8_t> bytes = trace.serialize();
  // Flip one bit in a spread of positions (every byte would be slow on a
  // large trace; a fixed stride still covers header, events and checksum).
  const size_t stride = std::max<size_t>(1, bytes.size() / 256);
  for (size_t pos = 0; pos < bytes.size(); pos += stride) {
    bytes[pos] ^= 0x40;
    core::ScheduleTrace out;
    std::string error;
    EXPECT_FALSE(core::ScheduleTrace::deserialize(bytes, out, &error))
        << "corruption at byte " << pos << " must be rejected";
    bytes[pos] ^= 0x40;
  }
  EXPECT_NE(bytes.size(), 0u);
}

TEST(TraceFormat, TrailingBytesRejected) {
  const core::ScheduleTrace trace = make_sample_trace();
  std::vector<uint8_t> bytes = trace.serialize();
  bytes.push_back(0);
  core::ScheduleTrace out;
  std::string error;
  EXPECT_FALSE(core::ScheduleTrace::deserialize(bytes, out, &error));
}

// --- divergence -----------------------------------------------------------

TEST(TraceReplay, TamperedTraceDiverges) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  core::ScheduleTrace trace;
  ASSERT_EQ(record_run(*program, 2, trace).status,
            SessionResult::Status::kOk);
  ASSERT_GT(trace.events.size(), 10u);

  // Corrupt one mid-stream verification payload: replay must flag the exact
  // event instead of running to completion or crashing.
  core::ScheduleTrace tampered = trace;
  tampered.events[10].a += 1;
  const SessionResult replayed = replay_run(*program, tampered);
  EXPECT_EQ(replayed.status, SessionResult::Status::kConfig);
  EXPECT_NE(replayed.error.find("at event"), std::string::npos)
      << replayed.error;

  // Dropping the tail means the execution outlives the trace.
  core::ScheduleTrace shortened = trace;
  shortened.events.resize(trace.events.size() / 2);
  const SessionResult under = replay_run(*program, shortened);
  EXPECT_EQ(under.status, SessionResult::Status::kConfig);
  EXPECT_NE(under.error.find("exhausted"), std::string::npos) << under.error;
}

TEST(TraceReplay, WrongProgramRejected) {
  const rt::GuestProgram* recorded_on = progs::find_program("listing4-task");
  const rt::GuestProgram* other = progs::find_program("cilk-fib");
  ASSERT_NE(recorded_on, nullptr);
  ASSERT_NE(other, nullptr);
  core::ScheduleTrace trace;
  ASSERT_EQ(record_run(*recorded_on, 2, trace).status,
            SessionResult::Status::kOk);
  const SessionResult replayed = replay_run(*other, trace);
  EXPECT_EQ(replayed.status, SessionResult::Status::kConfig);
  EXPECT_NE(replayed.error.find("recorded for program"), std::string::npos)
      << replayed.error;
}

TEST(TraceReplay, RecordAndReplayMutuallyExclusive) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  core::ScheduleTrace trace;
  ASSERT_EQ(record_run(*program, 2, trace).status,
            SessionResult::Status::kOk);
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.record_into = &trace;
  options.replay_from = &trace;
  const SessionResult result = run_session(*program, options);
  EXPECT_EQ(result.status, SessionResult::Status::kConfig);
  EXPECT_NE(result.error.find("cannot record and replay"), std::string::npos);
}

}  // namespace
}  // namespace tg::tools
