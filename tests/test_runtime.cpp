// minomp runtime tests: parallel regions, tasks, dependences, sync
// constructs, scheduling, and the OMPT-style event stream.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "runtime/runtime.hpp"
#include "vex/builder.hpp"

namespace tg::rt {
namespace {

using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

/// Records the event stream as readable strings for assertions.
class EventRecorder : public RtEvents {
 public:
  void on_task_create(Task& task, Task* parent) override {
    line() << "create t" << task.id << " parent="
           << (parent != nullptr ? static_cast<int64_t>(parent->id) : -1)
           << (task.is_implicit() ? " implicit" : "")
           << (task.is_undeferred() ? " undeferred" : "");
    creates++;
  }
  void on_dependence(Task& pred, Task& succ, GuestAddr) override {
    line() << "dep t" << pred.id << "->t" << succ.id;
    dep_edges.emplace(pred.id, succ.id);
  }
  void on_task_schedule_begin(Task& task, Worker& worker) override {
    line() << "begin t" << task.id << " w" << worker.index();
    placement[task.id].insert(worker.index());
  }
  void on_task_schedule_end(Task& task, Worker& worker) override {
    line() << "end t" << task.id << " w" << worker.index();
  }
  void on_task_complete(Task& task) override {
    line() << "complete t" << task.id;
    completion_order.push_back(task.id);
  }
  void on_sync_begin(SyncKind kind, Task& task, Worker&) override {
    line() << "sync_begin " << static_cast<int>(kind) << " t" << task.id;
  }
  void on_sync_end(SyncKind kind, Task& task, Worker&) override {
    line() << "sync_end " << static_cast<int>(kind) << " t" << task.id;
  }
  void on_parallel_begin(Region& region, Task&) override {
    line() << "parallel_begin r" << region.id << " n" << region.nthreads;
    regions++;
  }
  void on_parallel_end(Region& region, Task&) override {
    line() << "parallel_end r" << region.id;
  }
  void on_barrier_release(Region&, uint64_t epoch) override {
    line() << "barrier_release e" << epoch;
    barrier_releases++;
  }
  void on_mutex_acquired(Task& task, uint64_t, bool) override {
    line() << "mutex_acquired t" << task.id;
  }

  std::ostringstream& line() {
    log_ << "\n";
    return log_;
  }
  std::string log() { return log_.str(); }
  bool contains(const std::string& needle) {
    return log_.str().find(needle) != std::string::npos;
  }

  int creates = 0;
  int regions = 0;
  int barrier_releases = 0;
  std::set<std::pair<uint64_t, uint64_t>> dep_edges;
  std::map<uint64_t, std::set<int>> placement;
  std::vector<uint64_t> completion_order;

 private:
  std::ostringstream log_;
};

struct OmpHarness {
  OmpHarness() : pb("rt_test") {
    install_runtime_abi(pb);
    omp = std::make_unique<Omp>(pb);
    main_fn = &pb.fn("main", "rt_test.c");
  }

  ExecResult run(int threads, uint64_t seed = 1) {
    if (!main_fn->terminated()) main_fn->ret(main_fn->c(0));
    program = pb.take();
    RtOptions opts;
    opts.num_threads = threads;
    opts.seed = seed;
    return execute_program(program, opts, nullptr, {&events});
  }

  ProgramBuilder pb;
  std::unique_ptr<Omp> omp;
  FnBuilder* main_fn;
  vex::Program program;
  EventRecorder events;
};

// --- parallel regions -----------------------------------------------------

TEST(Parallel, AllThreadsRunRegionBody) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr counter = h.pb.global("counter", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    // Each implicit task bumps a (racy, but single-step) counter.
    V addr = pf.c(static_cast<int64_t>(counter));
    pf.st(addr, pf.ld(addr) + pf.c(1));
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(counter))));

  auto result = h.run(4);
  EXPECT_TRUE(result.outcome.ok());
  EXPECT_EQ(result.outcome.exit_code, 4);
  EXPECT_EQ(h.events.regions, 1);
}

TEST(Parallel, ThreadNumsAreDistinct) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr slots = h.pb.global("slots", 8 * 4);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    V tid = h.omp->thread_num(pf);
    pf.st(pf.c(static_cast<int64_t>(slots)) + tid * pf.c(8), tid + pf.c(1));
  });
  Slot sum = f.slot();
  sum.set(0);
  f.for_(0, 4, [&](Slot i) {
    sum.set(sum.get() +
            f.ld(f.c(static_cast<int64_t>(slots)) + i.get() * f.c(8)));
  });
  f.ret(sum.get());

  auto result = h.run(4);
  EXPECT_EQ(result.outcome.exit_code, 1 + 2 + 3 + 4);
}

TEST(Parallel, SequentialRegionsBothRun) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr counter = h.pb.global("counter", 8);
  for (int i = 0; i < 2; ++i) {
    h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
      h.omp->single(pf, [&] {
        V addr = pf.c(static_cast<int64_t>(counter));
        pf.st(addr, pf.ld(addr) + pf.c(1));
      });
    });
  }
  f.ret(f.ld(f.c(static_cast<int64_t>(counter))));
  auto result = h.run(2);
  EXPECT_EQ(result.outcome.exit_code, 2);
  EXPECT_EQ(h.events.regions, 2);
}

TEST(Parallel, CapturesArriveInRegion) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr out = h.pb.global("out", 8);
  h.omp->parallel(f, f.c(2), {f.c(123)}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      pf.st(pf.c(static_cast<int64_t>(out)), a.get(0));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(out))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 123);
}

// --- explicit tasks -------------------------------------------------------

TEST(Tasks, TaskRunsAndTaskwaitWaits) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        tf.st(tf.c(static_cast<int64_t>(x)), tf.c(41));
      });
      h.omp->taskwait(pf);
      V addr = pf.c(static_cast<int64_t>(x));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 42);
}

TEST(Tasks, FirstprivateCapturesValueAtCreation) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr out = h.pb.global("out", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      Slot i = pf.slot();
      i.set(7);
      h.omp->task(pf, {}, {i.get()}, [&](FnBuilder& tf, TaskArgs& a) {
        tf.st(tf.c(static_cast<int64_t>(out)), a.get(0));
      });
      i.set(99);  // must not affect the captured value
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(out))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 7);
}

TEST(Tasks, ManyTasksAllExecute) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr sum = h.pb.global("sum", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(1, 33, [&](Slot i) {
        h.omp->task(pf, {}, {i.get()}, [&](FnBuilder& tf, TaskArgs& a) {
          // Sum via critical to make the result deterministic.
          h.omp->critical(tf, "sum", [&] {
            V addr = tf.c(static_cast<int64_t>(sum));
            tf.st(addr, tf.ld(addr) + a.get(0));
          });
        });
      });
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(sum))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 32 * 33 / 2);
}

TEST(Tasks, StealingSpreadsAcrossWorkers) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr sink = h.pb.global("sink", 8 * 64);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 64, [&](Slot i) {
        h.omp->task(pf, {}, {i.get()}, [&](FnBuilder& tf, TaskArgs& a) {
          // Busy-ish body so multiple quanta elapse.
          Slot acc = tf.slot();
          acc.set(0);
          tf.for_(0, 200, [&](Slot j) { acc.set(acc.get() + j.get()); });
          tf.st(tf.c(static_cast<int64_t>(sink)) + a.get(0) * tf.c(8),
                acc.get());
        });
      });
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(4, /*seed=*/3);
  EXPECT_TRUE(result.outcome.ok());
  // At least two different workers must have executed explicit tasks.
  std::set<int> workers_used;
  for (auto& [task, workers] : h.events.placement) {
    if (task < 5) continue;  // skip root/implicit
    workers_used.insert(workers.begin(), workers.end());
  }
  EXPECT_GE(workers_used.size(), 2u);
}

TEST(Tasks, NestedTasksAndDeepTaskwait) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        h.omp->task(tf, {}, {}, [&](FnBuilder& tf2, TaskArgs&) {
          V addr = tf2.c(static_cast<int64_t>(x));
          tf2.st(addr, tf2.ld(addr) + tf2.c(10));
        });
        h.omp->taskwait(tf);
        V addr = tf.c(static_cast<int64_t>(x));
        tf.st(addr, tf.ld(addr) + tf.c(1));
      });
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 11);
}

TEST(Tasks, UndeferredIf0RunsInline) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      TaskOpts opts;
      opts.if0 = true;
      h.omp->task(pf, opts, {}, [&](FnBuilder& tf, TaskArgs&) {
        tf.st(tf.c(static_cast<int64_t>(x)), tf.c(5));
      });
      // No taskwait: undeferred means it already completed here.
      V addr = pf.c(static_cast<int64_t>(x));
      pf.st(addr, pf.ld(addr) * pf.c(2));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 10);
  EXPECT_TRUE(h.events.contains("undeferred"));
}

TEST(Tasks, SingleThreadSerializesEverything) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(1), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
      tf.st(tf.c(static_cast<int64_t>(x)), tf.c(1));
    });
    // LLVM-style: at nthreads==1 the task ran undeferred, so x is set.
    V addr = pf.c(static_cast<int64_t>(x));
    pf.st(addr, pf.ld(addr) + pf.c(1));
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(1).outcome.exit_code, 2);
  EXPECT_TRUE(h.events.contains("undeferred"));
}

// --- dependences ------------------------------------------------------------

TEST(Deps, OutThenInOrdersTasks) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  const GuestAddr y = h.pb.global("y", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      h.omp->task(pf, {.deps = {dep_out(xa)}}, {},
                  [&](FnBuilder& tf, TaskArgs&) {
                    tf.st(tf.c(static_cast<int64_t>(x)), tf.c(21));
                  });
      h.omp->task(pf, {.deps = {dep_in(xa)}}, {},
                  [&](FnBuilder& tf, TaskArgs&) {
                    V v = tf.ld(tf.c(static_cast<int64_t>(x)));
                    tf.st(tf.c(static_cast<int64_t>(y)), v * tf.c(2));
                  });
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(y))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 42);
  EXPECT_TRUE(h.events.dep_edges.size() >= 1);
}

TEST(Deps, OutOutSerializesInOrder) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      for (int value : {1, 2, 3}) {
        h.omp->task(pf, {.deps = {dep_out(xa)}}, {pf.c(value)},
                    [&](FnBuilder& tf, TaskArgs& a) {
                      tf.st(tf.c(static_cast<int64_t>(x)), a.get(0));
                    });
      }
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  // Chain order is guaranteed by out->out dependences.
  EXPECT_EQ(h.run(4).outcome.exit_code, 3);
}

TEST(Deps, InTasksRunInParallelGeneration) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      h.omp->task(pf, {.deps = {dep_out(xa)}}, {},
                  [&](FnBuilder& tf, TaskArgs&) {
                    tf.st(tf.c(static_cast<int64_t>(x)), tf.c(1));
                  });
      h.omp->task(pf, {.deps = {dep_in(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->task(pf, {.deps = {dep_in(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->taskwait(pf);
    });
  });
  h.run(2);
  // writer(id 5?) -> both readers; readers have no edge between them.
  // Count: exactly 2 dependence edges.
  EXPECT_EQ(h.events.dep_edges.size(), 2u);
}

TEST(Deps, InoutsetMembersMutuallyIndependent) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      h.omp->task(pf, {.deps = {dep_out(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->task(pf, {.deps = {dep_inoutset(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->task(pf, {.deps = {dep_inoutset(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->task(pf, {.deps = {dep_in(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->taskwait(pf);
    });
  });
  h.run(2);
  // Edges: out->setA, out->setB, setA->in, setB->in = 4; no setA<->setB.
  EXPECT_EQ(h.events.dep_edges.size(), 4u);
}

TEST(Deps, MutexinoutsetNeverOverlaps) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  const GuestAddr marker = h.pb.global("marker", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      for (int i = 0; i < 4; ++i) {
        h.omp->task(pf, {.deps = {dep_mutexinoutset(xa)}}, {},
                    [&](FnBuilder& tf, TaskArgs&) {
                      // marker must always read 0 then be restored: mutual
                      // exclusion means no interleaving.
                      V ma = tf.c(static_cast<int64_t>(marker));
                      V seen = tf.ld(ma);
                      tf.st(ma, seen + tf.c(1));
                      Slot spin = tf.slot();
                      spin.set(0);
                      tf.for_(0, 50, [&](Slot j) {
                        spin.set(spin.get() + j.get());
                      });
                      // Accumulate violations into x.
                      V va = tf.c(static_cast<int64_t>(x));
                      tf.st(va, tf.ld(va) + seen);
                      tf.st(ma, tf.ld(ma) - tf.c(1));
                    });
      }
      h.omp->taskwait(pf);
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  // Zero violations: each task saw marker == 0.
  EXPECT_EQ(h.run(4).outcome.exit_code, 0);
}

TEST(Deps, NonSiblingDepsDoNotConnect) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V xa = pf.c(static_cast<int64_t>(x));
      // Task A spawns a child with depend(out:x); task B (sibling of A)
      // depends in:x. The dependence does NOT order B after A's child.
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        V xa2 = tf.c(static_cast<int64_t>(x));
        h.omp->task(tf, {.deps = {dep_out(xa2)}}, {},
                    [](FnBuilder&, TaskArgs&) {});
        h.omp->taskwait(tf);
      });
      h.omp->task(pf, {.deps = {dep_in(xa)}}, {},
                  [](FnBuilder&, TaskArgs&) {});
      h.omp->taskwait(pf);
    });
  });
  h.run(2);
  EXPECT_TRUE(h.events.dep_edges.empty());
}

// --- sync constructs --------------------------------------------------------

TEST(Sync, SingleExecutedByExactlyOneThread) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr counter = h.pb.global("counter", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      V addr = pf.c(static_cast<int64_t>(counter));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(counter))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 1);
}

TEST(Sync, BarrierSeparatesPhases) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr phase1 = h.pb.global("phase1", 8 * 4);
  const GuestAddr ok = h.pb.global("ok", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    V tid = h.omp->thread_num(pf);
    pf.st(pf.c(static_cast<int64_t>(phase1)) + tid * pf.c(8), pf.c(1));
    h.omp->barrier(pf);
    // After the barrier every thread must see all phase1 writes.
    Slot sum = pf.slot();
    sum.set(0);
    pf.for_(0, 4, [&](Slot i) {
      sum.set(sum.get() +
              pf.ld(pf.c(static_cast<int64_t>(phase1)) + i.get() * pf.c(8)));
    });
    pf.if_(sum.get() == pf.c(4), [&] {
      V addr = pf.c(static_cast<int64_t>(ok));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(ok))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 4);
  EXPECT_GE(h.events.barrier_releases, 1);
}

TEST(Sync, BarrierDrainsPendingTasks) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->master(pf, [&] {
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        tf.st(tf.c(static_cast<int64_t>(x)), tf.c(77));
      });
    });
    h.omp->barrier(pf);
    // The explicit task is guaranteed complete after the barrier.
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 77);
}

TEST(Sync, TaskgroupWaitsForDescendants) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->taskgroup(pf, [&] {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          // Nested child also in the group (deep wait).
          h.omp->task(tf, {}, {}, [&](FnBuilder& tf2, TaskArgs&) {
            V addr = tf2.c(static_cast<int64_t>(x));
            tf2.st(addr, tf2.ld(addr) + tf2.c(40));
          });
          V addr = tf.c(static_cast<int64_t>(x));
          tf.st(addr, tf.ld(addr) + tf.c(2));
        });
      });
      // Group closed: both increments visible.
      V addr = pf.c(static_cast<int64_t>(x));
      pf.st(addr, pf.ld(addr) * pf.c(10));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 420);
}

TEST(Sync, CriticalIsMutuallyExclusive) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    pf.for_(0, 10, [&](Slot) {
      h.omp->critical(pf, "x", [&] {
        V addr = pf.c(static_cast<int64_t>(x));
        pf.st(addr, pf.ld(addr) + pf.c(1));
      });
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 40);
}

// --- taskloop ----------------------------------------------------------------

TEST(Taskloop, CoversRangeExactlyOnce) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr hits = h.pb.global("hits", 8 * 100);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->taskloop(pf, {.grainsize = 7}, {}, pf.c(0), pf.c(100),
                      [&](FnBuilder& tf, TaskArgs&, Slot i) {
                        V addr = tf.c(static_cast<int64_t>(hits)) +
                                 i.get() * tf.c(8);
                        tf.st(addr, tf.ld(addr) + tf.c(1));
                      });
    });
  });
  Slot bad = f.slot();
  bad.set(0);
  f.for_(0, 100, [&](Slot i) {
    V v = f.ld(f.c(static_cast<int64_t>(hits)) + i.get() * f.c(8));
    f.if_(v != f.c(1), [&] { bad.set(bad.get() + f.c(1)); });
  });
  f.ret(bad.get());
  EXPECT_EQ(h.run(4).outcome.exit_code, 0);
}

TEST(Taskloop, ImplicitGroupWaits) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr sum = h.pb.global("sum", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->taskloop(pf, {.grainsize = 3}, {}, pf.c(0), pf.c(10),
                      [&](FnBuilder& tf, TaskArgs&, Slot i) {
                        h.omp->critical(tf, "s", [&] {
                          V addr = tf.c(static_cast<int64_t>(sum));
                          tf.st(addr, tf.ld(addr) + i.get());
                        });
                      });
      // taskloop's implicit taskgroup: all chunks complete here.
      V addr = pf.c(static_cast<int64_t>(sum));
      pf.st(addr, pf.ld(addr) * pf.c(2));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(sum))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 2 * 45);
}

// --- threadprivate / detach ---------------------------------------------------

TEST(Threadprivate, PerThreadCopies) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr ok = h.pb.global("ok", 8);
  h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    V tp = h.omp->threadprivate(pf, "counter", 8);
    V tid = h.omp->thread_num(pf);
    pf.st(tp, tid + pf.c(100));
    h.omp->barrier(pf);
    // Re-resolve: same per-thread address, value intact.
    V tp2 = h.omp->threadprivate(pf, "counter", 8);
    pf.if_(pf.ld(tp2) == tid + pf.c(100), [&] {
      h.omp->critical(pf, "ok", [&] {
        V addr = pf.c(static_cast<int64_t>(ok));
        pf.st(addr, pf.ld(addr) + pf.c(1));
      });
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(ok))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 4);
}

TEST(Detach, TaskCompletesOnlyAfterFulfill) {
  OmpHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr handle = h.pb.global("handle", 8);
  const GuestAddr x = h.pb.global("x", 8);
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      TaskOpts opts;
      opts.detachable = true;
      h.omp->task(pf, opts, {}, [&](FnBuilder& tf, TaskArgs&) {
        V ev = h.omp->detach_event(tf);
        tf.st(tf.c(static_cast<int64_t>(handle)), ev);
        tf.st(tf.c(static_cast<int64_t>(x)), tf.c(1));
      });
      // Another task fulfills the event later.
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        Slot ev = tf.slot();
        ev.set(tf.ld(tf.c(static_cast<int64_t>(handle))));
        // Busy-wait until the detached body stored its handle.
        tf.while_([&] { return ev.get() == tf.c(0); },
                  [&] {
                    tf.intrinsic(vex::IntrinsicId::kTaskYield, {}, {});
                    ev.set(tf.ld(tf.c(static_cast<int64_t>(handle))));
                  });
        h.omp->fulfill_event(tf, ev.get());
      });
      h.omp->taskwait(pf);  // completes only after the fulfill
      V addr = pf.c(static_cast<int64_t>(x));
      pf.st(addr, pf.ld(addr) + pf.c(41));
    });
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(x))));
  EXPECT_EQ(h.run(2).outcome.exit_code, 42);
}

// --- scheduling determinism -----------------------------------------------

TEST(Scheduling, DeterministicForSeed) {
  auto run_once = [](uint64_t seed) {
    OmpHarness h;
    FnBuilder& f = *h.main_fn;
    const GuestAddr log_cursor = h.pb.global("cursor", 8);
    const GuestAddr log = h.pb.global("log", 8 * 64);
    h.omp->parallel(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
      h.omp->single(pf, [&] {
        pf.for_(0, 32, [&](Slot i) {
          h.omp->task(pf, {}, {i.get()}, [&](FnBuilder& tf, TaskArgs& a) {
            h.omp->critical(tf, "log", [&] {
              V ca = tf.c(static_cast<int64_t>(log_cursor));
              V cur = tf.ld(ca);
              tf.st(tf.c(static_cast<int64_t>(log)) + cur * tf.c(8),
                    a.get(0));
              tf.st(ca, cur + tf.c(1));
            });
          });
        });
        h.omp->taskwait(pf);
      });
    });
    auto result = h.run(4, seed);
    EXPECT_TRUE(result.outcome.ok());
    return result.retired;
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(Scheduling, CilkSpawnSyncFib) {
  OmpHarness h;
  Cilk cilk(h.pb);
  FnBuilder& f = *h.main_fn;
  const GuestAddr out = h.pb.global("out", 8);

  // fib(n, result_addr) with spawned subcalls.
  FnBuilder& fib = h.pb.fn("fib", "cilk_fib.c", 2);
  {
    Slot a = fib.slot();
    Slot b = fib.slot();
    fib.if_(
        fib.param(0) < fib.c(2),
        [&] { fib.st(fib.param(1), fib.param(0)); },
        [&] {
          cilk.spawn(fib, {fib.param(0), a.addr()},
                     [&](FnBuilder& tf, TaskArgs& ta) {
                       V r = tf.call("fib", {ta.get(0) - tf.c(1), ta.get(1)});
                       (void)r;
                     });
          fib.call("fib", {fib.param(0) - fib.c(2), b.addr()});
          cilk.sync(fib);
          fib.st(fib.param(1), fib.ld(a.addr()) + fib.ld(b.addr()));
        });
    fib.ret();
  }

  cilk.program(f, f.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    pf.call("fib", {pf.c(10), pf.c(static_cast<int64_t>(out))});
  });
  f.ret(f.ld(f.c(static_cast<int64_t>(out))));
  EXPECT_EQ(h.run(4).outcome.exit_code, 55);
}

TEST(Scheduling, NoDeadlockAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    OmpHarness h;
    FnBuilder& f = *h.main_fn;
    h.omp->parallel(f, f.c(3), {}, [&](FnBuilder& pf, TaskArgs&) {
      h.omp->single(pf, [&] {
        pf.for_(0, 20, [&](Slot) {
          h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
            h.omp->task(tf, {}, {}, [](FnBuilder&, TaskArgs&) {});
            h.omp->taskwait(tf);
          });
        });
        h.omp->taskwait(pf);
      });
    });
    EXPECT_TRUE(h.run(3, seed).outcome.ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tg::rt
