// Registry integrity: every registered kernel builds a valid program, runs
// to completion uninstrumented at 1 and 4 threads, and carries coherent
// metadata.
#include <gtest/gtest.h>

#include <set>

#include "programs/registry.hpp"
#include "runtime/execution.hpp"
#include "tools/session.hpp"

namespace tg::progs {
namespace {

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& program : all_programs()) {
    EXPECT_TRUE(names.insert(program.name).second) << program.name;
  }
}

TEST(Registry, ExpectedCounts) {
  EXPECT_EQ(programs_in("drb").size(), 29u);  // the Table I DRB subset
  EXPECT_EQ(programs_in("tmb").size(), 7u);   // the 7 TMB kernels
  EXPECT_GE(programs_in("demo").size(), 4u);
  EXPECT_EQ(programs_in("app").size(), 4u);
}

TEST(Registry, AppWorkloadsBehaveAsLabelled) {
  for (const auto* program : programs_in("app")) {
    tools::SessionOptions options;
    options.tool = tools::ToolKind::kTaskgrind;
    options.num_threads = 4;
    const auto result = tools::run_session(*program, options);
    ASSERT_EQ(result.status, tools::SessionResult::Status::kOk)
        << program->name;
    EXPECT_EQ(result.racy(), program->has_race) << program->name;
  }
}

TEST(Registry, MergesortActuallySorts) {
  const auto* program = find_program("app-mergesort");
  ASSERT_NE(program, nullptr);
  const vex::Program guest = program->build();
  rt::RtOptions options;
  options.num_threads = 4;
  const auto result = rt::execute_program(guest, options, nullptr, {});
  EXPECT_EQ(result.outcome.exit_code, 0);  // zero inversions
}

TEST(Registry, WavefrontCornerValueDeterministic) {
  const auto* program = find_program("app-wavefront");
  ASSERT_NE(program, nullptr);
  for (int threads : {1, 4}) {
    const vex::Program guest = program->build();
    rt::RtOptions options;
    options.num_threads = threads;
    const auto result = rt::execute_program(guest, options, nullptr, {});
    EXPECT_EQ(result.outcome.exit_code, 14);  // (8-1) + (8-1) hops
  }
}

TEST(Registry, FindByName) {
  EXPECT_NE(find_program("listing4-task"), nullptr);
  EXPECT_EQ(find_program("no-such-program"), nullptr);
}

TEST(Registry, MetadataCoherent) {
  for (const auto& program : all_programs()) {
    EXPECT_FALSE(program.features.empty()) << program.name;
    EXPECT_FALSE(program.description.empty()) << program.name;
    EXPECT_TRUE(program.build != nullptr) << program.name;
    EXPECT_TRUE(program.uses("task") || program.uses("taskloop") ||
                program.uses("futures"))
        << program.name << " is not a tasking benchmark?";
  }
}

class EveryProgram : public ::testing::TestWithParam<const rt::GuestProgram*> {
};

TEST_P(EveryProgram, BuildsValidProgram) {
  const vex::Program program = GetParam()->build();
  EXPECT_EQ(program.validate(), "");
  EXPECT_NE(program.entry, vex::kNoFunc);
}

TEST_P(EveryProgram, RunsUninstrumentedBothTeamSizes) {
  for (int threads : {1, 4}) {
    const vex::Program guest = GetParam()->build();
    rt::RtOptions options;
    options.num_threads = threads;
    const rt::ExecResult result =
        rt::execute_program(guest, options, nullptr, {});
    EXPECT_TRUE(result.outcome.ok())
        << GetParam()->name << " @" << threads << " threads";
  }
}

TEST_P(EveryProgram, DeterministicRetiredCountPerSeed) {
  auto run = [&](uint64_t seed) {
    const vex::Program guest = GetParam()->build();
    rt::RtOptions options;
    options.num_threads = 4;
    options.seed = seed;
    return rt::execute_program(guest, options, nullptr, {}).retired;
  };
  EXPECT_EQ(run(3), run(3));
}

std::vector<const rt::GuestProgram*> all_pointers() {
  std::vector<const rt::GuestProgram*> result;
  for (const auto& program : all_programs()) result.push_back(&program);
  return result;
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryProgram, ::testing::ValuesIn(all_pointers()),
    [](const ::testing::TestParamInfo<const rt::GuestProgram*>& info) {
      std::string name = info.param->name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tg::progs
