// SegmentGraphBuilder unit tests through the scalar event API: segment
// splitting, join expansion, barriers, regions, detach and FEB edges.
#include <gtest/gtest.h>

#include "core/graph_builder.hpp"
#include "runtime/task.hpp"

namespace tg::core {
namespace {

using rt::SyncKind;
using rt::TaskFlags;

/// Replays a canned event script and exposes the graph. No VM attached:
/// suppression metadata stays zero, which these tests do not need.
struct Script {
  SegmentGraphBuilder builder;

  Script() { builder.set_undeferred_parallel(true); }

  uint64_t spawn(uint64_t parent, uint32_t flags = 0,
                 uint64_t region = kNoId) {
    const uint64_t id = next_id++;
    builder.task_create(id, parent, flags, region, {});
    return id;
  }
  void begin(uint64_t task, int tid = 0) {
    builder.schedule_begin(task, tid);
  }
  void end(uint64_t task, int tid = 0) { builder.schedule_end(task, tid); }
  void complete(uint64_t task) { builder.task_complete(task); }
  void access(int tid, uint64_t addr, bool write) {
    builder.record_access(tid, addr, 8, write, {});
  }

  SegmentGraph& finalize() { return builder.finalize(); }

  /// All (write vs any) conflicting unordered segment pairs.
  size_t conflicts() {
    SegmentGraph& graph = builder.graph();
    size_t count = 0;
    for (SegId a = 0; a < graph.size(); ++a) {
      for (SegId b = a + 1; b < graph.size(); ++b) {
        const Segment& s1 = graph.segment(a);
        const Segment& s2 = graph.segment(b);
        if (s1.kind != SegKind::kTask || s2.kind != SegKind::kTask) continue;
        if (graph.ordered(a, b)) continue;
        if (s1.writes.intersects(s2.writes) ||
            s1.writes.intersects(s2.reads) ||
            s2.writes.intersects(s1.reads)) {
          ++count;
        }
      }
    }
    return count;
  }

  uint64_t next_id = 0;
};

TEST(GraphBuilder, RootAloneHasOneSegment) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  EXPECT_EQ(graph.size(), 1u);
  EXPECT_TRUE(graph.segment(0).writes.contains(0x100));
}

TEST(GraphBuilder, TaskCreateSplitsParent) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);  // pre-create segment
  const uint64_t child = s.spawn(root);
  s.access(0, 0x108, true);  // post-create segment (parent continues)
  s.end(root);
  s.begin(child, 1);
  s.access(1, 0x100, false);  // reads what the parent wrote BEFORE create
  s.access(1, 0x108, false);  // reads what the parent wrote AFTER create
  s.complete(child);
  s.begin(root);
  s.complete(root);
  SegmentGraph& graph = s.finalize();

  // Find the child's segment and the parent's two segments.
  SegId pre = kNoSeg, post = kNoSeg, child_seg = kNoSeg;
  for (SegId i = 0; i < graph.size(); ++i) {
    const Segment& seg = graph.segment(i);
    if (seg.task_id == root && seg.writes.contains(0x100)) pre = i;
    if (seg.task_id == root && seg.writes.contains(0x108)) post = i;
    if (seg.task_id == child) child_seg = i;
  }
  ASSERT_NE(pre, kNoSeg);
  ASSERT_NE(post, kNoSeg);
  ASSERT_NE(child_seg, kNoSeg);
  EXPECT_TRUE(graph.reachable(pre, child_seg));    // ordered before child
  EXPECT_FALSE(graph.ordered(post, child_seg));    // concurrent with child
}

TEST(GraphBuilder, TaskwaitJoinsChildren) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t child = s.spawn(root);
  s.end(root);
  s.begin(child, 1);
  s.access(1, 0x200, true);
  s.complete(child);
  s.begin(root);
  s.builder.sync_begin(SyncKind::kTaskwait, root, 0);
  s.builder.sync_end(SyncKind::kTaskwait, root, 0);
  s.access(0, 0x200, true);  // after the wait: ordered with the child
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, NoTaskwaitMeansConflict) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t child = s.spawn(root);
  s.access(0, 0x200, true);  // parent writes while child may run
  s.end(root);
  s.begin(child, 1);
  s.access(1, 0x200, true);
  s.complete(child);
  s.begin(root);
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 1u);
}

TEST(GraphBuilder, TaskgroupJoinsDescendantsDeep) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.builder.taskgroup_begin(root);
  const uint64_t child = s.spawn(root);
  s.end(root);
  s.begin(child, 1);
  const uint64_t grandchild = s.spawn(child);
  s.complete(child);
  s.begin(grandchild, 2);
  s.access(2, 0x300, true);
  s.complete(grandchild);
  s.begin(root);
  s.builder.sync_begin(SyncKind::kTaskgroupEnd, root, 0);
  s.builder.sync_end(SyncKind::kTaskgroupEnd, root, 0);
  s.access(0, 0x300, true);  // ordered even with the grandchild
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, DependenceEdgesOrderTasks) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t t1 = s.spawn(root);
  const uint64_t t2 = s.spawn(root);
  s.builder.dependence(t1, t2);
  s.end(root);
  s.begin(t1, 1);
  s.access(1, 0x400, true);
  s.complete(t1);
  s.begin(t2, 2);
  s.access(2, 0x400, true);
  s.complete(t2);
  s.begin(root);
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, BarrierNodeOrdersEpochs) {
  Script s;
  constexpr uint64_t kRegion = 7;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.builder.parallel_begin(kRegion, root, 2);
  const uint64_t w0 = s.spawn(root, TaskFlags::kImplicit, kRegion);
  const uint64_t w1 = s.spawn(root, TaskFlags::kImplicit, kRegion);
  s.end(root);
  s.begin(w0, 0);
  s.begin(w1, 1);
  s.access(0, 0x500, true);  // phase 1 on worker 0
  // Both arrive at the barrier.
  s.builder.sync_begin(SyncKind::kBarrier, w0, 0);
  s.builder.barrier_arrive(kRegion, 0, w0);
  s.builder.sync_begin(SyncKind::kBarrier, w1, 1);
  s.builder.barrier_arrive(kRegion, 0, w1);
  s.builder.barrier_release(kRegion, 0);
  s.builder.sync_end(SyncKind::kBarrier, w0, 0);
  s.builder.sync_end(SyncKind::kBarrier, w1, 1);
  s.access(1, 0x500, true);  // phase 2 on worker 1: ordered by the barrier
  s.complete(w0);
  s.complete(w1);
  s.builder.parallel_end(kRegion, root);
  s.begin(root);
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, RegionWindowsSetForEq1) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  for (uint64_t region = 0; region < 2; ++region) {
    s.builder.parallel_begin(region, root, 1);
    const uint64_t w = s.spawn(root, TaskFlags::kImplicit, region);
    s.end(root);
    s.begin(w, 0);
    s.access(0, 0x600, true);
    s.complete(w);
    s.builder.parallel_end(region, root);
    s.begin(root);
  }
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  // The two regions' implicit segments are region_ordered (Eq. 1).
  SegId first = kNoSeg, second = kNoSeg;
  for (SegId i = 0; i < graph.size(); ++i) {
    const Segment& seg = graph.segment(i);
    if (seg.kind != SegKind::kTask || !seg.writes.contains(0x600)) continue;
    if (seg.region_id == 0) first = i;
    if (seg.region_id == 1) second = i;
  }
  ASSERT_NE(first, kNoSeg);
  ASSERT_NE(second, kNoSeg);
  EXPECT_TRUE(graph.region_ordered(graph.segment(first),
                                   graph.segment(second)));
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, UndeferredSequentialWithoutPolicy) {
  Script s;
  s.builder.set_undeferred_parallel(false);
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x700, true);
  const uint64_t child = s.spawn(root, TaskFlags::kUndeferred);
  s.end(root);
  s.begin(child, 0);
  s.access(0, 0x700, true);
  s.complete(child);
  s.begin(root);
  s.access(0, 0x700, true);  // parent continuation: after the child
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);  // fully serialized
}

TEST(GraphBuilder, FulfillOrdersDetachedCompletion) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t detached = s.spawn(root, TaskFlags::kDetachable);
  const uint64_t fulfiller = s.spawn(root);
  s.end(root);
  s.begin(detached, 1);
  s.complete(detached);  // frames done; completion awaits the fulfill
  s.begin(fulfiller, 2);
  s.access(2, 0x800, true);  // before the fulfill
  s.builder.task_fulfill(detached, 2);
  s.complete(fulfiller);
  s.begin(root);
  s.builder.sync_begin(SyncKind::kTaskwait, root, 0);
  s.builder.sync_end(SyncKind::kTaskwait, root, 0);
  s.access(0, 0x800, true);  // after the taskwait: ordered via fulfill
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, FebEdgesOrderAcrossTasks) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t producer = s.spawn(root);
  const uint64_t consumer = s.spawn(root);
  s.end(root);
  s.begin(producer, 1);
  s.access(1, 0x900, true);
  s.builder.feb_release(producer, 0xFEB, true);
  s.complete(producer);
  s.begin(consumer, 2);
  s.builder.feb_acquire(consumer, 0xFEB, true);
  s.access(2, 0x900, false);
  s.complete(consumer);
  s.begin(root);
  s.complete(root);
  s.finalize();
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(GraphBuilder, CurrentSegmentTracksAnnouncedTask) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  EXPECT_EQ(s.builder.current_segment(0), kNoSeg);
  s.begin(root);
  const SegId seg = s.builder.current_segment(0);
  EXPECT_NE(seg, kNoSeg);
  s.end(root);
  EXPECT_EQ(s.builder.current_segment(0), kNoSeg);
}

// --- access-cursor invalidation ---------------------------------------------
// record_access caches the tid -> task -> open-segment resolution; these
// tests pin down that every event that can move a thread to a different
// segment invalidates the cache, so no access ever lands in a stale tree.

TEST(GraphBuilder, CursorFollowsTaskwaitSplit) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);  // resolves + caches the cursor
  const SegId before = s.builder.current_segment(0);
  s.builder.sync_begin(SyncKind::kTaskwait, root, 0);
  s.builder.sync_end(SyncKind::kTaskwait, root, 0);
  s.access(0, 0x200, true);  // must land in the post-wait segment
  const SegId after = s.builder.current_segment(0);
  ASSERT_NE(before, after);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  EXPECT_TRUE(graph.segment(before).writes.contains(0x100));
  EXPECT_FALSE(graph.segment(before).writes.contains(0x200));
  EXPECT_TRUE(graph.segment(after).writes.contains(0x200));
  EXPECT_FALSE(graph.segment(after).writes.contains(0x100));
}

TEST(GraphBuilder, CursorFollowsTaskCreateSplit) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);
  const SegId before = s.builder.current_segment(0);
  const uint64_t child = s.spawn(root);  // splits the parent's segment
  s.access(0, 0x200, true);
  const SegId after = s.builder.current_segment(0);
  ASSERT_NE(before, after);
  s.begin(child, 1);
  s.complete(child);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  EXPECT_TRUE(graph.segment(before).writes.contains(0x100));
  EXPECT_TRUE(graph.segment(after).writes.contains(0x200));
  EXPECT_FALSE(graph.segment(after).writes.contains(0x100));
}

TEST(GraphBuilder, ScheduleEndDropsAccesses) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);
  s.end(root);
  s.access(0, 0x200, true);  // no announced task: dropped, not crashed
  s.access(0, 0x208, true);  // second hit exercises the cached negative
  s.begin(root);
  s.access(0, 0x300, true);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  for (SegId i = 0; i < graph.size(); ++i) {
    EXPECT_FALSE(graph.segment(i).writes.contains(0x200));
    EXPECT_FALSE(graph.segment(i).writes.contains(0x208));
  }
  bool seen = false;
  for (SegId i = 0; i < graph.size(); ++i) {
    seen = seen || graph.segment(i).writes.contains(0x300);
  }
  EXPECT_TRUE(seen);
}

TEST(GraphBuilder, IgnoreFlagDropsAndSurvivesSegmentChurn) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  s.access(0, 0x100, true);
  s.builder.set_ignoring(0, true);
  EXPECT_TRUE(s.builder.ignoring(0));
  s.access(0, 0x200, true);  // dropped
  // Segment churn while ignoring: the flag is thread state, not segment
  // state, so it must survive the cursor invalidation.
  s.builder.sync_begin(SyncKind::kTaskwait, root, 0);
  s.builder.sync_end(SyncKind::kTaskwait, root, 0);
  s.access(0, 0x210, true);  // still dropped
  s.builder.set_ignoring(0, false);
  EXPECT_FALSE(s.builder.ignoring(0));
  s.access(0, 0x300, true);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  bool seen_100 = false;
  bool seen_300 = false;
  for (SegId i = 0; i < graph.size(); ++i) {
    const IntervalSet& writes = graph.segment(i).writes;
    EXPECT_FALSE(writes.contains(0x200));
    EXPECT_FALSE(writes.contains(0x210));
    seen_100 = seen_100 || writes.contains(0x100);
    seen_300 = seen_300 || writes.contains(0x300);
  }
  EXPECT_TRUE(seen_100);
  EXPECT_TRUE(seen_300);
}

TEST(GraphBuilder, IgnoreFlagBeforeAnyAccessOrTask) {
  Script s;
  // The flag can arrive before the thread ever announced a task.
  s.builder.set_ignoring(2, true);
  EXPECT_TRUE(s.builder.ignoring(2));
  EXPECT_FALSE(s.builder.ignoring(0));
  EXPECT_FALSE(s.builder.ignoring(-1));
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root, 2);
  s.access(2, 0x100, true);  // dropped: ignore set before resolution
  s.builder.set_ignoring(2, false);
  s.access(2, 0x200, true);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  bool seen = false;
  for (SegId i = 0; i < graph.size(); ++i) {
    EXPECT_FALSE(graph.segment(i).writes.contains(0x100));
    seen = seen || graph.segment(i).writes.contains(0x200);
  }
  EXPECT_TRUE(seen);
}

TEST(GraphBuilder, CursorsIndependentPerThread) {
  Script s;
  const uint64_t root = s.spawn(kNoId, TaskFlags::kImplicit);
  s.begin(root);
  const uint64_t child = s.spawn(root);
  s.begin(child, 1);
  s.access(0, 0x100, true);
  s.access(1, 0x200, true);
  s.builder.set_ignoring(0, true);
  s.access(0, 0x110, true);  // dropped
  s.access(1, 0x210, true);  // tid 1 unaffected
  s.builder.set_ignoring(0, false);
  s.complete(child);
  s.end(root);
  s.begin(root);
  s.complete(root);
  SegmentGraph& graph = s.finalize();
  bool seen_210 = false;
  for (SegId i = 0; i < graph.size(); ++i) {
    EXPECT_FALSE(graph.segment(i).writes.contains(0x110));
    seen_210 = seen_210 || graph.segment(i).writes.contains(0x210);
  }
  EXPECT_TRUE(seen_210);
}

}  // namespace
}  // namespace tg::core
