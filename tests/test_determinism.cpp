// Determinism regression: the whole analysis pipeline is a pure function
// of (program, threads, seed, options). Five repeated runs must produce a
// byte-identical canonical report at every worker count - the invariant
// record/replay and the schedule fuzzer are built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lulesh/lulesh.hpp"
#include "programs/registry.hpp"
#include "tools/session.hpp"

namespace tg::tools {
namespace {

constexpr int kRepeats = 5;

SessionOptions base_options(int threads) {
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = threads;
  return options;
}

std::string canonical_run(const rt::GuestProgram& program,
                          const SessionOptions& options) {
  const SessionResult result = run_session(program, options);
  EXPECT_NE(result.status, SessionResult::Status::kCrash) << program.name;
  return session_json(options, result, /*canonical=*/true);
}

TEST(Determinism, RegistryProgramsAreRepeatable) {
  for (const auto& program : progs::all_programs()) {
    for (int threads : {1, 2, 4, 8}) {
      const SessionOptions options = base_options(threads);
      const std::string first = canonical_run(program, options);
      for (int repeat = 1; repeat < kRepeats; ++repeat) {
        EXPECT_EQ(first, canonical_run(program, options))
            << program.name << " @" << threads << " repeat " << repeat;
      }
    }
  }
}

TEST(Determinism, SeedChangesAreIntentional) {
  // Different seeds may legally pick different schedules, but each seed
  // must itself be stable.
  const auto* program = progs::find_program("cilk-racy-sum");
  ASSERT_NE(program, nullptr);
  for (uint64_t seed : {1ull, 7ull, 1234567ull}) {
    SessionOptions options = base_options(4);
    options.seed = seed;
    const std::string first = canonical_run(*program, options);
    for (int repeat = 1; repeat < kRepeats; ++repeat) {
      EXPECT_EQ(first, canonical_run(*program, options)) << "seed " << seed;
    }
  }
}

TEST(Determinism, RacyLuleshIsRepeatable) {
  lulesh::LuleshParams params;
  params.s = 6;
  params.iters = 2;
  params.tel = 4;
  params.tnl = 4;
  params.racy = true;
  const rt::GuestProgram program = lulesh::make_lulesh(params);
  for (int threads : {1, 2, 4, 8}) {
    const SessionOptions options = base_options(threads);
    const std::string first = canonical_run(program, options);
    for (int repeat = 1; repeat < kRepeats; ++repeat) {
      EXPECT_EQ(first, canonical_run(program, options))
          << "lulesh @" << threads << " repeat " << repeat;
    }
  }
}

TEST(Determinism, PerturbationsAreRepeatable) {
  // A perturbed schedule is a different but equally deterministic one.
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);
  SessionOptions options = base_options(4);
  options.perturbation.steal_rotation = 3;
  options.perturbation.pop_fifo = true;
  options.perturbation.yield_period = 2;
  options.perturbation.yield_limit = 16;
  const std::string first = canonical_run(*program, options);
  for (int repeat = 1; repeat < kRepeats; ++repeat) {
    EXPECT_EQ(first, canonical_run(*program, options)) << "repeat " << repeat;
  }
}

}  // namespace
}  // namespace tg::tools
