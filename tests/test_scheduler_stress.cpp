// Scheduler stress: randomized nested task programs across seeds and team
// sizes. Asserts completion (no deadlock), per-seed determinism, and
// semantic correctness (an atomic counter totals exactly the task count).
#include <gtest/gtest.h>

#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "support/rng.hpp"
#include "vex/builder.hpp"

namespace tg::rt {
namespace {

using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

/// Builds a random tree of tasks. Every task increments a shared counter
/// under `critical`; some levels taskwait, some rely on the region barrier.
struct StressProgram {
  int total_tasks = 0;

  vex::Program build(uint64_t shape_seed) {
    Rng rng(shape_seed);
    ProgramBuilder pb("stress");
    install_runtime_abi(pb);
    Omp omp(pb);
    const GuestAddr counter = pb.global("counter", 8);

    FnBuilder& f = pb.fn("main", "stress.c");
    // Recursive spawner: spawn(level): creates children, each of which may
    // spawn again. The tree shape comes from the seeded Rng at BUILD time,
    // so the same shape_seed always builds the same program.
    std::function<void(FnBuilder&, int)> emit_level =
        [&](FnBuilder& fn, int level) {
          const int fanout =
              level >= 3 ? 0 : 1 + static_cast<int>(rng.below(3));
          for (int child = 0; child < fanout; ++child) {
            ++total_tasks;
            const bool nested_wait = rng.chance(0.4);
            omp.task(fn, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
              // Busy body of random length.
              const int64_t spin = 10 + static_cast<int64_t>(rng.below(80));
              Slot acc = tf.slot();
              acc.set(0);
              tf.for_(0, spin, [&](Slot j) { acc.set(acc.get() + j.get()); });
              omp.critical(tf, "c", [&] {
                V addr = tf.c(static_cast<int64_t>(counter));
                tf.st(addr, tf.ld(addr) + tf.c(1));
              });
              emit_level(tf, level + 1);
              if (nested_wait) omp.taskwait(tf);
            });
          }
          if (rng.chance(0.5)) omp.taskwait(fn);
        };

    omp.parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
      omp.single(pf, [&] {
        emit_level(pf, 0);
        omp.taskwait(pf);
      });
    });
    f.ret(f.ld(f.c(static_cast<int64_t>(counter))));
    return pb.take();
  }
};

struct Case {
  uint64_t shape_seed;
  int threads;
};

class SchedulerStress : public ::testing::TestWithParam<Case> {};

TEST_P(SchedulerStress, CompletesWithExactTaskCount) {
  const Case c = GetParam();
  StressProgram stress;
  const vex::Program program = stress.build(c.shape_seed);
  for (uint64_t sched_seed = 1; sched_seed <= 3; ++sched_seed) {
    RtOptions options;
    options.num_threads = c.threads;
    options.seed = sched_seed;
    options.quantum = 100 + sched_seed * 77;  // vary slicing too
    const ExecResult result = execute_program(program, options, nullptr, {});
    ASSERT_TRUE(result.outcome.ok())
        << "shape " << c.shape_seed << " threads " << c.threads << " seed "
        << sched_seed;
    EXPECT_EQ(result.outcome.exit_code, stress.total_tasks);
  }
}

TEST_P(SchedulerStress, DeterministicPerSeed) {
  const Case c = GetParam();
  StressProgram s1, s2;
  const vex::Program p1 = s1.build(c.shape_seed);
  const vex::Program p2 = s2.build(c.shape_seed);
  RtOptions options;
  options.num_threads = c.threads;
  options.seed = 9;
  const ExecResult a = execute_program(p1, options, nullptr, {});
  const ExecResult b = execute_program(p2, options, nullptr, {});
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.outcome.exit_code, b.outcome.exit_code);
}

std::vector<Case> cases() {
  std::vector<Case> result;
  for (uint64_t shape = 1; shape <= 6; ++shape) {
    for (int threads : {1, 2, 4}) result.push_back({shape, threads});
  }
  return result;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulerStress, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "shape" + std::to_string(info.param.shape_seed) + "_t" +
             std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace tg::rt
