// Front-end (compiler-lowering) tests: outlining, captures, construct
// emission, string interning, debug-info stamping.
#include <gtest/gtest.h>

#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "vex/builder.hpp"

namespace tg::rt {
namespace {

using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

struct Front {
  Front() : pb("front_test"), omp(pb) {
    install_runtime_abi(pb);
    main_fn = &pb.fn("main", "front.c");
  }

  vex::Program take() {
    if (!main_fn->terminated()) main_fn->ret(main_fn->c(0));
    return pb.take();
  }

  ExecResult run(int threads = 2) {
    program = take();
    RtOptions opts;
    opts.num_threads = threads;
    return execute_program(program, opts, nullptr, {});
  }

  ProgramBuilder pb;
  Omp omp;
  FnBuilder* main_fn;
  vex::Program program;
};

TEST(Frontend, OutlinedFunctionsGetClangStyleNames) {
  Front f;
  f.omp.parallel(*f.main_fn, {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.task(pf, {}, {}, [](FnBuilder&, TaskArgs&) {});
  });
  const vex::Program program = f.take();
  EXPECT_NE(program.find_fn("main.omp_parallel.0"), vex::kNoFunc);
  EXPECT_NE(program.find_fn("main.omp_parallel.0.omp_task.1"), vex::kNoFunc);
}

TEST(Frontend, OutlinedFunctionsInheritFile) {
  Front f;
  f.omp.parallel(*f.main_fn, {}, [](FnBuilder&, TaskArgs&) {});
  const vex::Program program = f.take();
  const vex::FuncId outlined = program.find_fn("main.omp_parallel.0");
  ASSERT_NE(outlined, vex::kNoFunc);
  EXPECT_STREQ(program.file_name(program.fn(outlined).file), "front.c");
}

TEST(Frontend, RegionFnEndsWithImplicitBarrier) {
  Front f;
  f.omp.parallel(*f.main_fn, {}, [](FnBuilder&, TaskArgs&) {});
  const vex::Program program = f.take();
  const vex::Function& fn =
      program.fn(program.find_fn("main.omp_parallel.0"));
  bool found_barrier = false;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.op == vex::Op::kIntrinsic &&
          static_cast<vex::IntrinsicId>(instr.imm) ==
              vex::IntrinsicId::kBarrier) {
        found_barrier = true;
      }
    }
  }
  EXPECT_TRUE(found_barrier);
}

TEST(Frontend, TaskArgsRoundTripValues) {
  Front f;
  FnBuilder& m = *f.main_fn;
  const GuestAddr out = f.pb.global("out", 8 * 3);
  f.omp.parallel(m, {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.single(pf, [&] {
      f.omp.task(pf, {}, {pf.c(11), pf.c(22), pf.c(33)},
                 [&](FnBuilder& tf, TaskArgs& a) {
                   for (int i = 0; i < 3; ++i) {
                     tf.st(tf.c(static_cast<int64_t>(out) + i * 8),
                           a.get(static_cast<uint32_t>(i)));
                   }
                 });
      f.omp.taskwait(pf);
    });
  });
  Slot sum = m.slot();
  sum.set(0);
  m.for_(0, 3, [&](Slot i) {
    sum.set(sum.get() + m.ld(m.c(static_cast<int64_t>(out)) + i.get() * m.c(8)));
  });
  m.ret(sum.get());
  EXPECT_EQ(f.run().outcome.exit_code, 66);
}

TEST(Frontend, MasterRunsOnlyOnThreadZero) {
  Front f;
  FnBuilder& m = *f.main_fn;
  const GuestAddr counter = f.pb.global("counter", 8);
  f.omp.parallel(m, m.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.master(pf, [&] {
      V addr = pf.c(static_cast<int64_t>(counter));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
  });
  m.ret(m.ld(m.c(static_cast<int64_t>(counter))));
  EXPECT_EQ(f.run(4).outcome.exit_code, 1);
}

TEST(Frontend, CriticalSectionsByNameAreDistinct) {
  Front f;
  FnBuilder& m = *f.main_fn;
  const GuestAddr a = f.pb.global("a", 8);
  const GuestAddr b = f.pb.global("b", 8);
  f.omp.parallel(m, m.c(4), {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.critical(pf, "first", [&] {
      V addr = pf.c(static_cast<int64_t>(a));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
    f.omp.critical(pf, "second", [&] {
      V addr = pf.c(static_cast<int64_t>(b));
      pf.st(addr, pf.ld(addr) + pf.c(1));
    });
  });
  m.ret(m.ld(m.c(static_cast<int64_t>(a))) +
        m.ld(m.c(static_cast<int64_t>(b))));
  EXPECT_EQ(f.run(4).outcome.exit_code, 8);
}

TEST(Frontend, TaskloopNogroupNeedsExplicitWait) {
  Front f;
  FnBuilder& m = *f.main_fn;
  const GuestAddr sum = f.pb.global("sum", 8);
  f.omp.parallel(m, m.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.single(pf, [&] {
      f.omp.taskloop(pf, {.grainsize = 2, .nogroup = true}, {}, pf.c(0),
                     pf.c(10), [&](FnBuilder& tf, TaskArgs&, Slot i) {
                       f.omp.critical(tf, "s", [&] {
                         V addr = tf.c(static_cast<int64_t>(sum));
                         tf.st(addr, tf.ld(addr) + i.get());
                       });
                     });
      f.omp.taskwait(pf);  // nogroup: we must wait ourselves
    });
  });
  m.ret(m.ld(m.c(static_cast<int64_t>(sum))));
  EXPECT_EQ(f.run(2).outcome.exit_code, 45);
}

TEST(Frontend, StringLiteralsInterned) {
  Front f;
  const GuestAddr first = f.pb.string_lit("hello");
  const GuestAddr again = f.pb.string_lit("hello");
  const GuestAddr other = f.pb.string_lit("world");
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
}

TEST(Frontend, LineStampsFlowIntoInstrs) {
  Front f;
  FnBuilder& m = *f.main_fn;
  m.line(77);
  Slot x = m.slot();
  x.set(1);
  const vex::Program program = f.take();
  const vex::Function& fn = program.fn(program.entry);
  bool saw = false;
  for (const auto& instr : fn.blocks[0].instrs) {
    if (instr.loc.line == 77) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(Frontend, NumThreadsIntrinsics) {
  Front f;
  FnBuilder& m = *f.main_fn;
  const GuestAddr out = f.pb.global("out", 8);
  f.omp.parallel(m, m.c(3), {}, [&](FnBuilder& pf, TaskArgs&) {
    f.omp.single(pf, [&] {
      pf.st(pf.c(static_cast<int64_t>(out)), f.omp.num_threads(pf));
    });
  });
  m.ret(m.ld(m.c(static_cast<int64_t>(out))));
  EXPECT_EQ(f.run(4).outcome.exit_code, 3);  // num_threads(3) wins
}

}  // namespace
}  // namespace tg::rt
