// Differential hardening of futures-aware ordering on non-series-parallel
// DAGs.
//
// future_get edges join siblings no fork-join nesting can relate, so every
// graph below exercises the ordering index's general-DAG fallback (the
// label-pruned DFS behind the chain-label/interval-certificate fast paths).
// Three claims are pinned:
//
//  * reachable()/ordered() from the timestamp index must agree with the
//    ancestor-bitset oracle on EVERY segment pair of every futures graph -
//    the futures registry programs and >= 100 random non-SP DAGs;
//  * findings from --tool=futures must be byte-identical across the whole
//    engine matrix: post-mortem oracle vs streaming at {1, 2, 4, 8}
//    analysis threads vs sharded workers {1, 2, 4} (canonical session JSON
//    compared whole), with the builder-side future_edges counter equal
//    everywhere;
//  * the pair-funnel conservation invariant (analysis.hpp: universe ==
//    never_generated + total, total partitions into the six exit buckets)
//    holds on every futures run, and streaming retirement only ever claims
//    segments provably ordered against everything created after them -
//    even when get-edges extend how long a segment must stay live.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.hpp"
#include "core/taskgrind.hpp"
#include "programs/registry.hpp"
#include "random_program.hpp"
#include "runtime/execution.hpp"
#include "tools/session.hpp"

namespace tg::core {
namespace {

// --- part 1: ordering index vs bitset oracle (post-mortem, all pairs) -----

struct Recorded {
  vex::Program guest;
  std::unique_ptr<TaskgrindTool> tool;

  SegmentGraph& graph() { return tool->builder().graph(); }
};

Recorded record(const rt::GuestProgram& program, int num_threads = 2) {
  Recorded r;
  r.guest = program.build();
  TaskgrindOptions topts;
  topts.streaming = false;
  r.tool = std::make_unique<TaskgrindTool>(topts);
  rt::RtOptions rt_options;
  rt_options.num_threads = num_threads;
  rt::Execution exec(r.guest, rt_options, r.tool.get(), {r.tool.get()});
  r.tool->attach(exec.vm());
  exec.run();
  r.graph().enable_bitset_oracle(true);
  r.graph().finalize();
  return r;
}

void expect_index_matches_oracle(const SegmentGraph& graph,
                                 const std::string& label) {
  const SegId n = static_cast<SegId>(graph.size());
  for (SegId a = 0; a < n; ++a) {
    for (SegId b = 0; b < n; ++b) {
      if (a == b) continue;
      ASSERT_EQ(graph.reachable(a, b), graph.reachable_oracle(a, b))
          << label << ": reachable(" << a << ", " << b << ")";
      ASSERT_EQ(graph.ordered(a, b), graph.ordered_oracle(a, b))
          << label << ": ordered(" << a << ", " << b << ")";
    }
  }
}

std::vector<std::string> findings(Recorded& r, const AnalysisOptions& o) {
  const AnalysisResult result =
      analyze_races(r.graph(), r.guest, &r.tool->allocs(), o);
  std::vector<std::string> texts;
  texts.reserve(result.reports.size());
  for (const RaceReport& report : result.reports) {
    texts.push_back(report.to_string());
  }
  return texts;
}

void expect_identical_findings_across_matrix(Recorded& r,
                                             const std::string& label) {
  AnalysisOptions baseline;
  baseline.use_bitset_oracle = true;
  baseline.use_region_fast_path = false;
  baseline.use_bbox_pruning = false;
  baseline.threads = 1;
  const std::vector<std::string> expected = findings(r, baseline);

  for (bool oracle : {true, false}) {
    for (bool region_fast : {true, false}) {
      for (bool bbox : {true, false}) {
        for (int threads : {1, 2, 4, 8}) {
          AnalysisOptions o;
          o.use_bitset_oracle = oracle;
          o.use_region_fast_path = region_fast;
          o.use_bbox_pruning = bbox;
          o.threads = threads;
          ASSERT_EQ(findings(r, o), expected)
              << label << ": oracle=" << oracle
              << " region_fast=" << region_fast << " bbox=" << bbox
              << " threads=" << threads;
        }
      }
    }
  }
}

// --- part 2: engine matrix through --tool=futures -------------------------

void expect_funnel_conserved(const AnalysisStats& s,
                             const std::string& label) {
  const uint64_t universe =
      s.segments_active * (s.segments_active - 1) / 2;
  EXPECT_EQ(s.pairs_never_generated + s.pairs_total, universe)
      << label << ": funnel leak (universe != never_generated + total)";
  EXPECT_EQ(s.pairs_region_fast + s.pairs_ordered + s.pairs_mutex +
                s.pairs_skipped_bbox + s.pairs_skipped_fingerprint +
                s.pairs_scanned,
            s.pairs_total)
      << label << ": generated pairs do not partition into the exit buckets";
}

struct EngineRun {
  tools::SessionOptions options;
  tools::SessionResult result;
  std::string canonical;
};

EngineRun run_futures(const rt::GuestProgram& program, bool streaming,
                      int analysis_threads, int shard_workers = 0,
                      int num_threads = 2) {
  EngineRun run;
  run.options.tool = tools::ToolKind::kFutures;
  run.options.num_threads = num_threads;
  run.options.taskgrind.streaming = streaming;
  run.options.taskgrind.analysis_threads = analysis_threads;
  run.options.taskgrind.shard_workers = shard_workers;
  run.result = tools::run_session(program, run.options);
  run.canonical =
      tools::session_json(run.options, run.result, /*canonical=*/true);
  if (run.result.status == tools::SessionResult::Status::kOk) {
    // The conservation invariant is asserted on EVERY futures run the
    // suite performs, across all three engines.
    expect_funnel_conserved(run.result.analysis_stats, program.name);
  }
  return run;
}

void expect_identical_findings(const EngineRun& oracle,
                               const EngineRun& other,
                               const std::string& label) {
  ASSERT_EQ(oracle.result.status, other.result.status) << label;
  EXPECT_EQ(oracle.result.report_count, other.result.report_count) << label;
  EXPECT_EQ(oracle.result.raw_report_count, other.result.raw_report_count)
      << label;
  ASSERT_EQ(oracle.result.report_texts.size(),
            other.result.report_texts.size())
      << label;
  for (size_t i = 0; i < oracle.result.report_texts.size(); ++i) {
    EXPECT_EQ(oracle.result.report_texts[i], other.result.report_texts[i])
        << label << " report " << i;
  }
  EXPECT_EQ(oracle.result.report_keys, other.result.report_keys) << label;
  EXPECT_EQ(oracle.canonical, other.canonical) << label;
  EXPECT_EQ(oracle.result.analysis_stats.raw_conflicts,
            other.result.analysis_stats.raw_conflicts)
      << label;
  // The get-edge count comes from the builder, not the engines - every
  // engine must observe the exact same DAG.
  EXPECT_EQ(oracle.result.analysis_stats.future_edges,
            other.result.analysis_stats.future_edges)
      << label;
}

void expect_engines_agree(const rt::GuestProgram& program,
                          const std::string& label,
                          bool expect_future_edges) {
  const EngineRun oracle = run_futures(program, /*streaming=*/false, 1);
  ASSERT_EQ(oracle.result.status, tools::SessionResult::Status::kOk)
      << label;
  if (expect_future_edges) {
    EXPECT_GT(oracle.result.analysis_stats.future_edges, 0u) << label;
  }
  for (int threads : {1, 2, 4, 8}) {
    const EngineRun streamed =
        run_futures(program, /*streaming=*/true, threads);
    expect_identical_findings(
        oracle, streamed, label + " streaming@" + std::to_string(threads));
  }
  for (int workers : {1, 2, 4}) {
    const EngineRun sharded = run_futures(program, /*streaming=*/true,
                                          /*analysis_threads=*/2, workers);
    expect_identical_findings(oracle, sharded,
                              label + " shard@" + std::to_string(workers));
  }
}

// --- part 3: streaming retirement safety under get-edges ------------------

struct StreamedRecord {
  vex::Program guest;
  std::unique_ptr<TaskgrindTool> tool;
  // (retired segment, graph size the instant it retired): the segment's
  // obligation is to be ordered against every id >= that size.
  std::unique_ptr<std::vector<std::pair<SegId, size_t>>> retired =
      std::make_unique<std::vector<std::pair<SegId, size_t>>>();
  AnalysisResult result;
};

StreamedRecord stream_record(const rt::GuestProgram& program,
                             int num_threads = 2) {
  StreamedRecord r;
  r.guest = program.build();
  TaskgrindOptions topts;
  topts.streaming = true;
  topts.use_bitset_oracle = true;
  r.tool = std::make_unique<TaskgrindTool>(topts);
  rt::RtOptions rt_options;
  rt_options.num_threads = num_threads;
  rt::Execution exec(r.guest, rt_options, r.tool.get(), {r.tool.get()});
  r.tool->attach(exec.vm());
  auto* sink = r.retired.get();
  r.tool->streamer()->set_retire_probe(
      [sink](SegId id, size_t graph_size) {
        sink->emplace_back(id, graph_size);
      });
  exec.run();
  r.result = r.tool->run_analysis();
  return r;
}

/// Every retired segment must be provably ordered (per the finalized
/// oracle) against every segment created after its retirement: those pairs
/// are never generated, so anything less would be unsound.
void expect_retirement_sound(StreamedRecord& r, const std::string& label) {
  const SegmentGraph& graph = r.tool->builder().graph();
  const SegId n = static_cast<SegId>(graph.size());
  for (const auto& [id, size_at_retire] : *r.retired) {
    for (SegId j = static_cast<SegId>(size_at_retire); j < n; ++j) {
      ASSERT_TRUE(graph.ordered_oracle(id, j))
          << label << ": segment " << id << " retired at graph size "
          << size_at_retire << " but is unordered vs later segment " << j;
    }
  }
  expect_funnel_conserved(r.result.stats, label + " (streamed)");
}

// --------------------------------------------------------------------------

TEST(FuturesOrdering, RegistryProgramsIndexMatchesOracle) {
  const auto futures_programs = progs::programs_in("futures");
  ASSERT_FALSE(futures_programs.empty());
  for (const rt::GuestProgram* program : futures_programs) {
    Recorded r = record(*program);
    // Every futures program must actually exercise the non-SP path.
    EXPECT_GT(r.tool->builder().future_edges(), 0u) << program->name;
    expect_index_matches_oracle(r.graph(), program->name);
    expect_identical_findings_across_matrix(r, program->name);
  }
}

class RandomFutures : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFutures, IndexAgreesWithOracleOnNonSpDags) {
  const uint64_t seed = GetParam();
  const progs::RandomProgram spec =
      progs::RandomProgram::generate_futures(seed);
  const rt::GuestProgram guest = spec.to_guest(seed);
  Recorded r = record(guest, /*num_threads=*/4);
  const std::string label = "random-futures-" + std::to_string(seed);
  expect_index_matches_oracle(r.graph(), label);
  expect_identical_findings_across_matrix(r, label);
}

TEST_P(RandomFutures, EnginesAgreeAndVerdictMatchesHostOracle) {
  const uint64_t seed = GetParam();
  const progs::RandomProgram spec =
      progs::RandomProgram::generate_futures(seed);
  if (!spec.uses_futures()) {
    GTEST_SKIP() << "seed drew no futures (rare); covered by the SP suites";
  }
  const std::set<int> oracle_cells = spec.racy_cells();
  const rt::GuestProgram guest = spec.to_guest(seed);
  const std::string label = "random-futures-" + std::to_string(seed);

  const EngineRun oracle = run_futures(guest, /*streaming=*/false, 1);
  ASSERT_EQ(oracle.result.status, tools::SessionResult::Status::kOk)
      << label;
  // The tool's verdict must match the host-side HB closure exactly - the
  // get-edges are load-bearing in both directions (missing one invents
  // races, inventing one hides them).
  EXPECT_EQ(oracle.result.racy(), !oracle_cells.empty()) << label;

  for (int threads : {1, 2, 4, 8}) {
    const EngineRun streamed =
        run_futures(guest, /*streaming=*/true, threads);
    expect_identical_findings(
        oracle, streamed, label + " streaming@" + std::to_string(threads));
  }
  for (int workers : {1, 2, 4}) {
    const EngineRun sharded = run_futures(guest, /*streaming=*/true,
                                          /*analysis_threads=*/2, workers);
    expect_identical_findings(oracle, sharded,
                              label + " shard@" + std::to_string(workers));
  }
}

// >= 100 random non-SP DAGs (the issue's acceptance bar).
INSTANTIATE_TEST_SUITE_P(Seeds, RandomFutures,
                         ::testing::Range<uint64_t>(1, 105));

TEST(FuturesEngines, RegistryProgramsAgreeAcrossEngines) {
  for (const rt::GuestProgram* program : progs::programs_in("futures")) {
    expect_engines_agree(*program, program->name,
                         /*expect_future_edges=*/true);
  }
}

TEST(FuturesRetirement, OnlyProvablyOrderedSegmentsRetire) {
  size_t total_retired = 0;
  for (const rt::GuestProgram* program : progs::programs_in("futures")) {
    StreamedRecord r = stream_record(*program);
    expect_retirement_sound(r, program->name);
    total_retired += r.retired->size();
  }
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const progs::RandomProgram spec =
        progs::RandomProgram::generate_futures(seed);
    const rt::GuestProgram guest = spec.to_guest(seed);
    StreamedRecord r = stream_record(guest, /*num_threads=*/4);
    expect_retirement_sound(r, "random-futures-" + std::to_string(seed));
    total_retired += r.retired->size();
  }
  // The probe must have observed real retirements, or the sweep above
  // proved nothing about the frontier under get-edges.
  EXPECT_GT(total_retired, 0u);
}

}  // namespace
}  // namespace tg::core
