// Incremental retirement sweeps vs the from-scratch oracle (--full-sweeps).
//
// The incremental sweep's contract is exact equality: at every frontier
// advance it must retire precisely the set the full sweep would, so the two
// modes' retirement event streams - compared per sweep via the (graph size
// at retire, id) pairs the retire probe records - must match on every
// workload, at every analysis thread count. Three input families pin this:
//
//  * the dense-mesh generator (laggard-stretched live windows, FEB edges),
//    including a memory-governed leg, with the order-independent
//    retirement-set digest compared across modes;
//  * a builder-driven program whose frontier holds >256 growth points -
//    the shape the removed kMaxFrontierPoints cap used to silently bail
//    on. Both modes must retire the root prefix WHILE the frontier is
//    wide, and sweeps_skipped_wide must stay 0;
//  * registry, random fork-join and random futures (non-SP) guests through
//    the full TaskgrindTool pipeline at {1, 2, 4, 8} analysis threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dense_mesh.hpp"
#include "core/graph_builder.hpp"
#include "core/streaming.hpp"
#include "core/taskgrind.hpp"
#include "programs/registry.hpp"
#include "random_program.hpp"
#include "runtime/execution.hpp"

namespace tg::core {
namespace {

using RetireEvents = std::vector<std::pair<size_t, SegId>>;

/// Within one sweep the two modes discover dead nodes in different orders
/// (DFS candidate order vs count-bucket order), but the graph size is
/// constant across a sweep - so sorting by (size, id) compares the per-
/// sweep retirement SETS, which is exactly the equality the incremental
/// sweep promises.
void expect_same_retirement(RetireEvents a, RetireEvents b,
                            const std::string& label) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << " event " << i;
  }
}

// --- dense mesh --------------------------------------------------------------

AnalysisOptions mesh_options(bool incremental) {
  AnalysisOptions options;
  options.threads = 2;
  options.incremental_retire = incremental;
  return options;
}

TEST(RetireIncremental, DenseMeshRetiresIdenticalSets) {
  for (const uint64_t segments : {2000ull, 20000ull}) {
    const DenseMeshSpec spec = DenseMeshSpec::for_segments(segments);
    const DenseMeshRun inc =
        run_dense_mesh(spec, mesh_options(true), /*streaming=*/true);
    const DenseMeshRun full =
        run_dense_mesh(spec, mesh_options(false), /*streaming=*/true);
    const std::string label = "mesh-" + std::to_string(segments);
    EXPECT_EQ(inc.identity, full.identity) << label;
    EXPECT_EQ(inc.retire_digest, full.retire_digest) << label;
    EXPECT_EQ(inc.result.stats.segments_retired,
              full.result.stats.segments_retired)
        << label;
    EXPECT_GT(inc.result.stats.segments_retired, 0u) << label;
    EXPECT_EQ(inc.result.stats.sweeps_skipped_wide, 0u) << label;
    EXPECT_EQ(full.result.stats.sweeps_skipped_wide, 0u) << label;
    EXPECT_GT(inc.result.stats.retire_sweep_visits, 0u) << label;
    // The peak live window must not regress either way: identical per-sweep
    // retirement implies identical peaks.
    EXPECT_EQ(inc.result.stats.peak_live_segments,
              full.result.stats.peak_live_segments)
        << label;
  }
}

TEST(RetireIncremental, DenseMeshGovernedLegMatches) {
  const DenseMeshSpec spec = DenseMeshSpec::for_segments(2000);
  const DenseMeshRun plain =
      run_dense_mesh(spec, mesh_options(true), /*streaming=*/true);
  for (const bool incremental : {true, false}) {
    AnalysisOptions governed = mesh_options(incremental);
    governed.max_tree_bytes = 32 << 10;
    const DenseMeshRun run = run_dense_mesh(spec, governed, true);
    const std::string label =
        std::string("governed incremental=") + (incremental ? "1" : "0");
    EXPECT_EQ(run.identity, plain.identity) << label;
    EXPECT_EQ(run.retire_digest, plain.retire_digest) << label;
  }
}

// --- wide frontier (the removed kMaxFrontierPoints cap) ----------------------

struct WideRun {
  RetireEvents events;
  size_t retired_while_wide = 0;  // retire events before any completion
  AnalysisResult result;
};

/// ~300 simultaneously-uncompleted tasks, each with its own access-bearing
/// segment: the frontier holds >256 growth points, the regime where the old
/// cap silently disabled retirement and let the live window grow without
/// bound. The root's early segments are ancestors of every growth point and
/// must retire DURING that regime in both sweep modes.
WideRun run_wide_frontier(bool incremental) {
  constexpr uint32_t kTasks = 300;
  static const vex::Program program = [] {
    vex::Program p;
    p.files = {"wide-frontier.c"};
    return p;
  }();

  WideRun run;
  SegmentGraphBuilder builder;
  builder.graph().enable_predecessor_index(true);
  AnalysisOptions options;
  options.threads = 1;
  options.incremental_retire = incremental;
  StreamingAnalyzer streamer(builder.graph(), program, /*allocs=*/nullptr,
                             options);
  streamer.set_retire_probe([&run](SegId id, size_t graph_size) {
    run.events.emplace_back(graph_size, id);
  });
  builder.set_sink(&streamer);

  builder.task_create(0, kNoId, rt::TaskFlags::kImplicit, kNoId, {0, 1});
  builder.schedule_begin(0, /*tid=*/0);
  builder.record_access(0, 0x1000, 8, /*is_write=*/true, {0, 1});
  for (uint32_t k = 1; k <= kTasks; ++k) {
    builder.task_create(k, 0, 0, kNoId, {0, 2});
    builder.schedule_begin(k, /*tid=*/static_cast<int>(k));
    builder.record_access(static_cast<int>(k), 0x1000 + 0x100ull * k, 8,
                          true, {0, 3});
  }
  // Ticker completions keep the sweep cadence going while every real task
  // stays uncompleted - the frontier is >256 points for all of them.
  for (uint32_t t = 0; t < 64; ++t) {
    builder.task_create(kTasks + 1 + t, 0, 0, kNoId, {0, 4});
    builder.task_complete(kTasks + 1 + t);
  }
  run.retired_while_wide = run.events.size();

  for (uint32_t k = 1; k <= kTasks; ++k) builder.task_complete(k);
  builder.task_complete(0);
  builder.finalize();
  run.result = streamer.finish();
  return run;
}

TEST(RetireIncremental, WideFrontierRetiresWithoutSkipping) {
  WideRun inc = run_wide_frontier(true);
  WideRun full = run_wide_frontier(false);
  // The regression the cap removal fixes: retirement must happen while the
  // frontier is wider than the old 256-point limit, in BOTH modes.
  EXPECT_GT(inc.retired_while_wide, 0u);
  EXPECT_GT(full.retired_while_wide, 0u);
  EXPECT_EQ(inc.retired_while_wide, full.retired_while_wide);
  EXPECT_EQ(inc.result.stats.sweeps_skipped_wide, 0u);
  EXPECT_EQ(full.result.stats.sweeps_skipped_wide, 0u);
  expect_same_retirement(inc.events, full.events, "wide-frontier");
}

// --- guest programs through the full pipeline --------------------------------

struct ToolRun {
  vex::Program guest;
  std::unique_ptr<TaskgrindTool> tool;
  std::unique_ptr<RetireEvents> events = std::make_unique<RetireEvents>();
  AnalysisResult result;
};

ToolRun run_tool(const rt::GuestProgram& program, bool incremental,
                 int analysis_threads) {
  ToolRun r;
  r.guest = program.build();
  TaskgrindOptions topts;
  topts.streaming = true;
  topts.incremental_retire = incremental;
  topts.analysis_threads = analysis_threads;
  r.tool = std::make_unique<TaskgrindTool>(topts);
  rt::RtOptions rt_options;
  rt_options.num_threads = 2;
  rt::Execution exec(r.guest, rt_options, r.tool.get(), {r.tool.get()});
  r.tool->attach(exec.vm());
  auto* sink = r.events.get();
  r.tool->streamer()->set_retire_probe([sink](SegId id, size_t graph_size) {
    sink->emplace_back(graph_size, id);
  });
  exec.run();
  r.result = r.tool->run_analysis();
  return r;
}

void expect_modes_agree(const rt::GuestProgram& program,
                        const std::string& label) {
  const ToolRun oracle = run_tool(program, /*incremental=*/false, 2);
  EXPECT_EQ(oracle.result.stats.sweeps_skipped_wide, 0u) << label;
  for (const int threads : {1, 2, 4, 8}) {
    const ToolRun inc = run_tool(program, /*incremental=*/true, threads);
    const std::string at = label + " @" + std::to_string(threads);
    expect_same_retirement(*oracle.events, *inc.events, at);
    EXPECT_EQ(oracle.result.reports.size(), inc.result.reports.size()) << at;
    for (size_t i = 0; i < oracle.result.reports.size() &&
                       i < inc.result.reports.size();
         ++i) {
      EXPECT_EQ(report_dedup_key(oracle.result.reports[i]),
                report_dedup_key(inc.result.reports[i]))
          << at << " report " << i;
    }
    EXPECT_EQ(inc.result.stats.sweeps_skipped_wide, 0u) << at;
  }
}

TEST(RetireIncremental, RegistryPrograms) {
  for (const rt::GuestProgram& program : progs::all_programs()) {
    expect_modes_agree(program, program.name);
  }
}

TEST(RetireIncremental, RandomForkJoinPrograms) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const progs::RandomProgram spec = progs::RandomProgram::generate(seed);
    const rt::GuestProgram program = spec.to_guest(seed);
    expect_modes_agree(program, "random-" + std::to_string(seed));
  }
}

TEST(RetireIncremental, RandomFuturesDags) {
  // Futures (non-SP) graphs add late get-edges - the one event that can
  // land inside a persistent walk's visited set, i.e. the pending-edge
  // replay path of the incremental sweep.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const progs::RandomProgram spec =
        progs::RandomProgram::generate_futures(seed);
    const rt::GuestProgram program = spec.to_guest(seed);
    expect_modes_agree(program, "futures-" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace tg::core
