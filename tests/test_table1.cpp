// Integration: pin the Table I reproduction.
//
// Every row of the published table is re-run here. For the Taskgrind column
// we assert the exact expected verdict (equal to the paper's cell, or to
// the documented deviation from EXPERIMENTS.md - all deviations are cases
// where this implementation fixes a prototype false positive). For the
// baselines we assert the aggregate properties the paper's argument needs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "bench/table1_data.hpp"
#include "programs/registry.hpp"
#include "tools/session.hpp"

namespace tg::bench {
namespace {

using tools::SessionOptions;
using tools::ToolKind;
using tools::Verdict;

std::string cell(const rt::GuestProgram& program, ToolKind tool, int threads) {
  SessionOptions options;
  options.tool = tool;
  options.num_threads = threads;
  options.seed = 1;
  const auto result = tools::run_session(program, options);
  return tools::verdict_name(tools::classify(program.has_race, result));
}

/// Documented deviations of the Taskgrind column (EXPERIMENTS.md §Table I):
/// paper-FP cells this implementation resolves to TN.
const std::map<std::pair<std::string, int>, std::string>&
taskgrind_deviations() {
  static const std::map<std::pair<std::string, int>, std::string> map = {
      {{"DRB107-taskgroup-orig", 4}, "TN"},         // taskgroup join edges
      {{"DRB174-non-sibling-taskdep", 4}, "TN"},    // ancestor-frame reuse
      {{"TMB1000-memory-recycling_1", 4}, "TN"},    // rt-arena separation
      {{"TMB1002-stack_2", 4}, "TN"},               // stack incarnations
      {{"TMB1006-tls_1", 4}, "TN"},                 // DTV recorded at close
  };
  return map;
}

struct Table1Row {
  PaperRow row;
};

class Table1 : public ::testing::TestWithParam<PaperRow> {};

TEST_P(Table1, TaskgrindCellPinned) {
  const PaperRow& row = GetParam();
  const rt::GuestProgram* program = progs::find_program(row.name);
  ASSERT_NE(program, nullptr);
  ASSERT_EQ(program->has_race, row.race) << "ground-truth label mismatch";

  std::string expected(row.taskgrind);
  auto deviation =
      taskgrind_deviations().find({std::string(row.name), row.threads});
  if (deviation != taskgrind_deviations().end()) {
    expected = deviation->second;
  }
  EXPECT_EQ(cell(*program, ToolKind::kTaskgrind, row.threads), expected)
      << row.name << " @" << row.threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(
    Rows, Table1, ::testing::ValuesIn(paper_table1()),
    [](const ::testing::TestParamInfo<PaperRow>& info) {
      std::string name = std::string(info.param.name) + "_t" +
                         std::to_string(info.param.threads);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Table1Aggregate, TaskgrindHasTheFewestFalseNegatives) {
  std::map<ToolKind, int> fn_count;
  for (const PaperRow& row : paper_table1()) {
    const rt::GuestProgram* program = progs::find_program(row.name);
    ASSERT_NE(program, nullptr);
    for (ToolKind tool : {ToolKind::kTaskSan, ToolKind::kArcher,
                          ToolKind::kRomp, ToolKind::kTaskgrind}) {
      if (cell(*program, tool, row.threads) == "FN") fn_count[tool]++;
    }
  }
  // The paper's headline: Taskgrind reports the fewest false negatives,
  // with exactly one (the mergeable benchmark).
  EXPECT_EQ(fn_count[ToolKind::kTaskgrind], 1);
  EXPECT_LT(fn_count[ToolKind::kTaskgrind], fn_count[ToolKind::kTaskSan]);
  EXPECT_LT(fn_count[ToolKind::kTaskgrind], fn_count[ToolKind::kArcher]);
  EXPECT_LT(fn_count[ToolKind::kTaskgrind], fn_count[ToolKind::kRomp]);
}

TEST(Table1Aggregate, TaskgrindSingleThreadTmbIsPerfect) {
  // "Single-thread execution of TMB reports 100% accuracy."
  for (const PaperRow& row : paper_table1()) {
    if (row.threads != 1) continue;
    const rt::GuestProgram* program = progs::find_program(row.name);
    ASSERT_NE(program, nullptr);
    const std::string verdict = cell(*program, ToolKind::kTaskgrind, 1);
    EXPECT_TRUE(verdict == "TP" || verdict == "TN")
        << row.name << " -> " << verdict;
  }
}

TEST(Table1Aggregate, OnlyMergeableEscapesTaskgrind) {
  for (const PaperRow& row : paper_table1()) {
    const rt::GuestProgram* program = progs::find_program(row.name);
    ASSERT_NE(program, nullptr);
    const std::string verdict =
        cell(*program, ToolKind::kTaskgrind, row.threads);
    if (verdict == "FN") {
      EXPECT_TRUE(program->uses("mergeable")) << row.name;
    }
  }
}

}  // namespace
}  // namespace tg::bench
