// The options/output API surface: CLI parsing (unknown tools and malformed
// numerics must be usage errors, not silent garbage), the nested
// TaskgrindOptions round-trip, and the `--json` schema.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/args.hpp"
#include "programs/registry.hpp"
#include "tools/session.hpp"

namespace tg::cli {
namespace {

ParseOutcome parse(std::vector<const char*> argv, CliOptions& out) {
  argv.insert(argv.begin(), "taskgrind");
  return parse_args(static_cast<int>(argv.size()), argv.data(), out);
}

TEST(CliArgs, UnknownToolIsUsageError) {
  CliOptions cli;
  const ParseOutcome outcome = parse({"--tool=nonsense", "fib"}, cli);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("unknown tool"), std::string::npos)
      << outcome.error;
  EXPECT_NE(outcome.error.find("nonsense"), std::string::npos);
}

TEST(CliArgs, KnownToolsParse) {
  for (const char* name :
       {"taskgrind", "archer", "tasksanitizer", "romp", "futures",
        "none"}) {
    CliOptions cli;
    const ParseOutcome outcome =
        parse({("--tool=" + std::string(name)).c_str(), "fib"}, cli);
    ASSERT_TRUE(outcome.ok) << name << ": " << outcome.error;
    EXPECT_EQ(tools::tool_name(cli.session.tool), std::string(name));
  }
}

TEST(CliArgs, MalformedNumbersAreUsageErrors) {
  for (const char* arg :
       {"--threads=two", "--threads=", "--threads=0", "--threads=-3",
        "--threads=4x", "--seed=banana", "--analysis-threads=1e9",
        "--max-reports-shown=??", "--max-tree-bytes=", "--max-tree-bytes=x",
        "--max-tree-bytes=-1", "--max-tree-bytes=4Q", "--max-tree-bytes=K",
        "--max-tree-bytes=1MM"}) {
    CliOptions cli;
    const ParseOutcome outcome = parse({arg, "fib"}, cli);
    EXPECT_FALSE(outcome.ok) << arg << " should be rejected";
    EXPECT_NE(outcome.error.find("invalid value"), std::string::npos)
        << arg << ": " << outcome.error;
  }
}

TEST(CliArgs, MaxTreeBytesAcceptsSuffixes) {
  const struct {
    const char* arg;
    uint64_t expected;
  } cases[] = {
      {"--max-tree-bytes=0", 0},
      {"--max-tree-bytes=4096", 4096},
      {"--max-tree-bytes=256K", 256ull << 10},
      {"--max-tree-bytes=256k", 256ull << 10},
      {"--max-tree-bytes=4M", 4ull << 20},
      {"--max-tree-bytes=2G", 2ull << 30},
  };
  for (const auto& c : cases) {
    CliOptions cli;
    const ParseOutcome outcome = parse({c.arg, "fib"}, cli);
    ASSERT_TRUE(outcome.ok) << c.arg << ": " << outcome.error;
    EXPECT_EQ(cli.session.taskgrind.max_tree_bytes, c.expected) << c.arg;
  }
}

TEST(CliArgs, SpillDirRoundTrips) {
  CliOptions cli;
  ASSERT_TRUE(parse({"--spill-dir=/tmp/spill", "fib"}, cli).ok);
  EXPECT_EQ(cli.session.taskgrind.spill_dir, "/tmp/spill");
  CliOptions empty;
  EXPECT_FALSE(parse({"--spill-dir=", "fib"}, empty).ok);
}

TEST(CliArgs, UnknownOptionIsUsageError) {
  CliOptions cli;
  const ParseOutcome outcome = parse({"--frobnicate", "fib"}, cli);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("--frobnicate"), std::string::npos);
}

TEST(CliArgs, FlagsRoundTripThroughNestedOptions) {
  CliOptions cli;
  const ParseOutcome outcome = parse(
      {"--threads=3", "--seed=7", "--analysis-threads=8", "--post-mortem",
       "--no-suppress-stack", "--no-suppress-tls", "--no-bbox-pruning",
       "--bitset-oracle", "--no-replace-allocator", "--no-ignore-list",
       "--json=/tmp/out.json", "fib"},
      cli);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(cli.session.num_threads, 3);
  EXPECT_EQ(cli.session.seed, 7u);
  const core::TaskgrindOptions& tg = cli.session.taskgrind;
  EXPECT_EQ(tg.analysis_threads, 8);
  EXPECT_FALSE(tg.streaming);
  EXPECT_FALSE(tg.suppress_stack);
  EXPECT_FALSE(tg.suppress_tls);
  EXPECT_FALSE(tg.use_bbox_pruning);
  EXPECT_TRUE(tg.use_bitset_oracle);
  EXPECT_FALSE(tg.replace_allocator);
  EXPECT_TRUE(tg.ignore_list.empty());
  EXPECT_EQ(cli.json_path, "/tmp/out.json");
  EXPECT_EQ(cli.program_name, "fib");

  // Defaults: streaming is on unless --post-mortem asked otherwise.
  CliOptions defaults;
  ASSERT_TRUE(parse({"fib"}, defaults).ok);
  EXPECT_TRUE(defaults.session.taskgrind.streaming);
}

TEST(CliArgs, UsageMentionsEveryMode) {
  const std::string usage = usage_text();
  for (const char* needle :
       {"--streaming", "--post-mortem", "--json", "--tool",
        "--analysis-threads", "--max-tree-bytes", "--spill-dir",
        "--record-trace", "--replay-trace", "--json-canonical",
        "--fuzz-schedules", "--fuzz-certs", "--shard-workers",
        "--shard-inflight-bytes", "--shard-kill-after", "--suppress"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
  // The mode-compatibility table renders into the usage text from the same
  // declarative array the parser checks - every excluded pair must appear.
  EXPECT_NE(usage.find("incompatible mode combinations:"), std::string::npos);
  for (const char* pair :
       {"--record-trace x --replay-trace", "--fuzz-schedules x --record-trace",
        "--fuzz-schedules x --replay-trace", "--shard-workers x --post-mortem",
        "--shard-workers x --fuzz-schedules"}) {
    EXPECT_NE(usage.find(pair), std::string::npos) << pair;
  }
}

TEST(CliArgs, ShardFlagsRoundTrip) {
  CliOptions cli;
  const ParseOutcome outcome =
      parse({"--shard-workers=4", "--shard-inflight-bytes=8M",
             "--shard-kill-after=12", "--suppress=/tmp/rules.txt", "fib"},
            cli);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(cli.session.taskgrind.shard_workers, 4);
  EXPECT_EQ(cli.session.taskgrind.shard_inflight_bytes, 8ull << 20);
  EXPECT_EQ(cli.session.taskgrind.shard_kill_after, 12u);
  EXPECT_EQ(cli.session.taskgrind.suppress_file, "/tmp/rules.txt");

  // Defaults: in-process scan threads, 4M backpressure bound, no rules file.
  CliOptions defaults;
  ASSERT_TRUE(parse({"fib"}, defaults).ok);
  EXPECT_EQ(defaults.session.taskgrind.shard_workers, 0);
  EXPECT_EQ(defaults.session.taskgrind.shard_inflight_bytes, 4ull << 20);
  EXPECT_EQ(defaults.session.taskgrind.shard_kill_after, 0u);
  EXPECT_TRUE(defaults.session.taskgrind.suppress_file.empty());
}

TEST(CliArgs, MalformedShardFlagsAreUsageErrors) {
  for (const char* arg :
       {"--shard-workers=", "--shard-workers=lots", "--shard-workers=-2",
        "--shard-workers=65", "--shard-inflight-bytes=",
        "--shard-inflight-bytes=0", "--shard-inflight-bytes=x",
        "--shard-kill-after=", "--shard-kill-after=never"}) {
    CliOptions cli;
    const ParseOutcome outcome = parse({arg, "fib"}, cli);
    EXPECT_FALSE(outcome.ok) << arg << " should be rejected";
    EXPECT_NE(outcome.error.find("invalid value"), std::string::npos)
        << arg << ": " << outcome.error;
  }
  CliOptions empty;
  const ParseOutcome outcome = parse({"--suppress=", "fib"}, empty);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("--suppress needs a file path"),
            std::string::npos)
      << outcome.error;
}

TEST(CliArgs, ShardModeExclusionsAreUsageErrors) {
  CliOptions post_mortem;
  const ParseOutcome shard_post_mortem = parse(
      {"--shard-workers=2", "--post-mortem", "fib"}, post_mortem);
  EXPECT_FALSE(shard_post_mortem.ok);
  EXPECT_NE(shard_post_mortem.error.find(
                "cannot combine --shard-workers with --post-mortem"),
            std::string::npos)
      << shard_post_mortem.error;

  CliOptions fuzz;
  const ParseOutcome shard_fuzz =
      parse({"--shard-workers=2", "--fuzz-schedules=4", "fib"}, fuzz);
  EXPECT_FALSE(shard_fuzz.ok);
  EXPECT_NE(shard_fuzz.error.find(
                "cannot combine --shard-workers with --fuzz-schedules"),
            std::string::npos)
      << shard_fuzz.error;

  // Record/replay compose with sharding - only the listed pairs exclude.
  CliOptions record;
  EXPECT_TRUE(
      parse({"--shard-workers=2", "--record-trace=/tmp/a", "fib"}, record)
          .ok);
}

TEST(CliArgs, TraceFlagsRoundTrip) {
  CliOptions record;
  ASSERT_TRUE(parse({"--record-trace=/tmp/a.tgtrace",
                     "--json-canonical=/tmp/c.json", "fib"},
                    record)
                  .ok);
  EXPECT_EQ(record.session.record_trace, "/tmp/a.tgtrace");
  EXPECT_EQ(record.canonical_json_path, "/tmp/c.json");

  CliOptions replay;
  ASSERT_TRUE(parse({"--replay-trace=/tmp/a.tgtrace", "fib"}, replay).ok);
  EXPECT_EQ(replay.session.replay_trace, "/tmp/a.tgtrace");

  CliOptions fuzz;
  ASSERT_TRUE(
      parse({"--fuzz-schedules=24", "--fuzz-certs=/tmp/certs", "fib"}, fuzz)
          .ok);
  EXPECT_EQ(fuzz.fuzz_runs, 24);
  EXPECT_EQ(fuzz.fuzz_cert_dir, "/tmp/certs");

  // Empty values are usage errors, not silently-empty paths.
  for (auto args : std::vector<std::vector<const char*>>{
           {"--record-trace=", "fib"},
           {"--replay-trace=", "fib"},
           {"--json-canonical=", "fib"},
           {"--fuzz-certs=", "fib"}}) {
    CliOptions cli;
    EXPECT_FALSE(parse(args, cli).ok) << args[0];
  }
}

TEST(CliArgs, MalformedFuzzSchedulesIsUsageError) {
  for (const char* arg : {"--fuzz-schedules=lots", "--fuzz-schedules=0",
                          "--fuzz-schedules=-4", "--fuzz-schedules="}) {
    CliOptions cli;
    const ParseOutcome outcome = parse({arg, "fib"}, cli);
    EXPECT_FALSE(outcome.ok) << arg;
    EXPECT_NE(outcome.error.find("invalid value for --fuzz-schedules"),
              std::string::npos)
        << arg << ": " << outcome.error;
  }
}

TEST(CliArgs, TraceModeExclusionsAreUsageErrors) {
  CliOptions both;
  const ParseOutcome record_and_replay = parse(
      {"--record-trace=/tmp/a", "--replay-trace=/tmp/b", "fib"}, both);
  EXPECT_FALSE(record_and_replay.ok);
  EXPECT_NE(record_and_replay.error.find("--record-trace"),
            std::string::npos);

  CliOptions fuzz_record;
  EXPECT_FALSE(
      parse({"--fuzz-schedules=4", "--record-trace=/tmp/a", "fib"},
            fuzz_record)
          .ok);
  CliOptions fuzz_replay;
  EXPECT_FALSE(
      parse({"--fuzz-schedules=4", "--replay-trace=/tmp/a", "fib"},
            fuzz_replay)
          .ok);
}

TEST(SessionJson, SchemaAndRoundTrippedValues) {
  const rt::GuestProgram* program = progs::find_program("listing4-task");
  ASSERT_NE(program, nullptr);
  tools::SessionOptions options;
  options.tool = tools::ToolKind::kTaskgrind;
  options.num_threads = 2;
  options.seed = 9;
  const tools::SessionResult result = tools::run_session(*program, options);
  const std::string json = tools::session_json(options, result);

  // Structural smoke: one top-level object, the schema tag, and every
  // section key the consumers (benches, CI artifacts) rely on.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* needle :
       {"\"schema\":\"taskgrind-session-v1\"", "\"tool\":\"taskgrind\"",
        "\"options\":", "\"taskgrind\":", "\"streaming\":true",
        "\"num_threads\":2", "\"seed\":9", "\"result\":",
        "\"status\":\"ok\"", "\"report_count\":1", "\"reports\":[",
        "\"stats\":", "\"streamed\":true", "\"segments_retired\":",
        "\"peak_live_segments\":", "\"retired_tree_bytes\":",
        "\"pairs_deferred\":", "\"raw_conflicts\":",
        "\"max_tree_bytes\":0", "\"spill_dir\":\"\"",
        "\"segments_spilled\":0", "\"spill_bytes_written\":0",
        "\"spill_reloads\":0", "\"enqueue_stalls\":0",
        "\"suppressed_user\":0", "\"suppress_file\":\"\"",
        "\"shard_workers\":0", "\"shard_segments_sent\":0",
        "\"shard_deaths\":0", "\"shard_pairs_resharded\":0",
        "\"shard_degraded\":false", "\"shard_pairs\":["}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Report text contains newlines - they must arrive escaped.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);

  // The full emission also carries the schedule-trace surface.
  for (const char* needle :
       {"\"canonical\":false", "\"perturbation\":", "\"schedule_events\":",
        "\"report_keys\":["}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // The canonical variant keeps only run-invariant fields: no options
  // block (record and replay invocations differ there), no timings.
  const std::string canonical =
      tools::session_json(options, result, /*canonical=*/true);
  EXPECT_NE(canonical.find("\"canonical\":true"), std::string::npos);
  EXPECT_NE(canonical.find("\"report_keys\":["), std::string::npos);
  for (const char* absent :
       {"\"options\":", "\"exec_seconds\"", "\"analysis_seconds\"",
        "\"peak_bytes\"", "\"streamed\"", "\"seconds\"", "\"shard_"}) {
    EXPECT_EQ(canonical.find(absent), std::string::npos) << absent;
  }
  // The suppression census IS run-invariant, so canonical keeps it.
  EXPECT_NE(canonical.find("\"suppressed_user\":0"), std::string::npos);
}

}  // namespace
}  // namespace tg::cli
