// Work/span parallelism profile tests (the "more analyses" extension).
#include <gtest/gtest.h>

#include "core/parallelism.hpp"
#include "core/taskgrind.hpp"
#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "vex/builder.hpp"

namespace tg::core {
namespace {

vex::SrcLoc loc() { return {0, 1}; }

Segment& weighted(SegmentGraph& graph, uint64_t bytes) {
  Segment& s = graph.new_segment();
  s.task_id = s.id;
  if (bytes > 0) s.writes.add(0x1000 * (s.id + 1), 0x1000 * (s.id + 1) + bytes, loc());
  return s;
}

TEST(Parallelism, ChainIsSerial) {
  SegmentGraph graph;
  for (int i = 0; i < 4; ++i) weighted(graph, 10);
  for (SegId i = 0; i + 1 < 4; ++i) graph.add_edge(i, i + 1);
  graph.finalize();
  const ParallelismProfile profile = profile_parallelism(graph);
  EXPECT_EQ(profile.work, 40u);
  EXPECT_EQ(profile.span, 40u);
  EXPECT_DOUBLE_EQ(profile.average_parallelism, 1.0);
  EXPECT_EQ(profile.critical_path.size(), 4u);
}

TEST(Parallelism, IndependentSegmentsScale) {
  SegmentGraph graph;
  for (int i = 0; i < 8; ++i) weighted(graph, 10);
  graph.finalize();
  const ParallelismProfile profile = profile_parallelism(graph);
  EXPECT_EQ(profile.work, 80u);
  EXPECT_EQ(profile.span, 10u);
  EXPECT_DOUBLE_EQ(profile.average_parallelism, 8.0);
  EXPECT_EQ(profile.critical_path.size(), 1u);
}

TEST(Parallelism, DiamondTakesHeavierArm) {
  SegmentGraph graph;
  Segment& top = weighted(graph, 5);
  Segment& light = weighted(graph, 3);
  Segment& heavy = weighted(graph, 30);
  Segment& bottom = weighted(graph, 5);
  graph.add_edge(top.id, light.id);
  graph.add_edge(top.id, heavy.id);
  graph.add_edge(light.id, bottom.id);
  graph.add_edge(heavy.id, bottom.id);
  graph.finalize();
  const ParallelismProfile profile = profile_parallelism(graph);
  EXPECT_EQ(profile.work, 43u);
  EXPECT_EQ(profile.span, 40u);  // top + heavy + bottom
  ASSERT_EQ(profile.critical_path.size(), 3u);
  EXPECT_EQ(profile.critical_path[1], heavy.id);
}

TEST(Parallelism, SyntheticNodesWeighNothing) {
  SegmentGraph graph;
  Segment& a = weighted(graph, 10);
  Segment& barrier = graph.new_segment(SegKind::kBarrier);
  Segment& b = weighted(graph, 10);
  graph.add_edge(a.id, barrier.id);
  graph.add_edge(barrier.id, b.id);
  graph.finalize();
  const ParallelismProfile profile = profile_parallelism(graph);
  EXPECT_EQ(profile.span, 20u);
  EXPECT_EQ(profile.critical_path.size(), 2u);  // barrier filtered out
}

TEST(Parallelism, EmptyGraph) {
  SegmentGraph graph;
  graph.finalize();
  const ParallelismProfile profile = profile_parallelism(graph);
  EXPECT_EQ(profile.work, 0u);
  EXPECT_EQ(profile.average_parallelism, 0.0);
}

TEST(Parallelism, EndToEndIndependentTasksBeatDependentChain) {
  auto run = [](bool chained) {
    vex::ProgramBuilder pb("par_profile");
    rt::install_runtime_abi(pb);
    rt::Omp omp(pb);
    vex::FnBuilder& f = pb.fn("main", "p.c");
    const vex::GuestAddr cells = pb.global("cells", 8 * 8);
    const vex::GuestAddr dep = pb.global("dep", 8);
    omp.annotate_tasks_deferrable(f);
    omp.parallel(f, {}, [&](vex::FnBuilder& pf, rt::TaskArgs&) {
      omp.single(pf, [&] {
        for (int t = 0; t < 8; ++t) {
          rt::TaskOpts opts;
          if (chained) {
            opts.deps.push_back(
                rt::dep_inout(pf.c(static_cast<int64_t>(dep))));
          }
          omp.task(pf, opts, {pf.c(t)},
                   [&](vex::FnBuilder& tf, rt::TaskArgs& a) {
                     vex::V addr = tf.c(static_cast<int64_t>(cells)) +
                                   a.get(0) * tf.c(8);
                     tf.for_(0, 16, [&](vex::Slot) {
                       tf.st(addr, tf.ld(addr) + tf.c(1));
                     });
                   });
        }
        omp.taskwait(pf);
      });
    });
    f.ret(f.c(0));
    const vex::Program program = pb.take();
    TaskgrindTool tool;
    rt::RtOptions options;
    options.num_threads = 2;
    rt::Execution exec(program, options, &tool, {&tool});
    tool.attach(exec.vm());
    exec.run();
    tool.run_analysis();
    return profile_parallelism(tool.builder().graph());
  };

  const ParallelismProfile wide = run(/*chained=*/false);
  const ParallelismProfile serial = run(/*chained=*/true);
  EXPECT_GT(wide.average_parallelism, 3.0);
  EXPECT_LT(serial.average_parallelism, wide.average_parallelism / 2);
}

}  // namespace
}  // namespace tg::core
