// End-to-end Taskgrind tests: the paper's listings as programs.
//
// Each test builds a guest program with the OpenMP front-end, runs it under
// the TaskgrindTool and checks what Algorithm 1 reports - including every
// §IV false-positive source with its suppression toggled on and off.
#include <gtest/gtest.h>

#include "core/taskgrind.hpp"
#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "vex/builder.hpp"

namespace tg::core {
namespace {

using rt::Omp;
using rt::TaskArgs;
using rt::TaskOpts;
using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

struct TgHarness {
  TgHarness() : pb("tg_test") {
    rt::install_runtime_abi(pb);
    omp = std::make_unique<Omp>(pb);
    main_fn = &pb.fn("main", "task.c");
  }

  AnalysisResult run(int threads, TaskgrindOptions topts = {},
                     uint64_t seed = 1, uint64_t quantum = 20000) {
    if (!main_fn->terminated()) main_fn->ret(main_fn->c(0));
    program = pb.take();
    tool = std::make_unique<TaskgrindTool>(std::move(topts));
    rt::RtOptions opts;
    opts.num_threads = threads;
    opts.seed = seed;
    opts.quantum = quantum;
    rt::Execution exec(program, opts, tool.get(), {tool.get()});
    tool->attach(exec.vm());
    exec_result = exec.run();
    EXPECT_TRUE(exec_result.outcome.ok());
    return tool->run_analysis();
  }

  ProgramBuilder pb;
  std::unique_ptr<Omp> omp;
  FnBuilder* main_fn;
  vex::Program program;
  std::unique_ptr<TaskgrindTool> tool;
  rt::ExecResult exec_result;
};

/// The paper's Listing 4: two sibling tasks both write x[0].
void build_listing4(TgHarness& h) {
  FnBuilder& f = *h.main_fn;
  f.line(3);
  V x = f.malloc_(f.c(2 * 4));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      pf.line(8);
      h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
        tf.line(9);
        tf.st(ta.get(0), tf.c(42), 4);
      });
      pf.line(11);
      h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
        tf.line(12);
        tf.st(ta.get(0), tf.c(43), 4);
      });
    });
  });
  f.line(15);
  f.ret(f.c(0));
}

TEST(Listing4, RaceDetected) {
  TgHarness h;
  build_listing4(h);
  auto result = h.run(2);
  ASSERT_TRUE(result.racy());
  const RaceReport& report = result.reports[0];
  EXPECT_EQ(report.hi - report.lo, 4u);
  EXPECT_STREQ(report.first.file, "task.c");
  EXPECT_STREQ(report.second.file, "task.c");
}

TEST(Listing4, ReportCitesAllocationSite) {
  TgHarness h;
  build_listing4(h);
  auto result = h.run(2);
  ASSERT_TRUE(result.racy());
  const RaceReport& report = result.reports[0];
  ASSERT_NE(report.alloc, nullptr);
  EXPECT_EQ(report.alloc->size, 8u);
  ASSERT_FALSE(report.alloc->trace.empty());
  // The allocation happened at task.c:3 in main.
  EXPECT_STREQ(report.alloc->trace[0].file, "task.c");
  EXPECT_EQ(report.alloc->trace[0].line, 3u);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("declared independent"), std::string::npos);
  EXPECT_NE(text.find("task.c:3"), std::string::npos);
}

TEST(Listing4, LinesPointAtTheTasks) {
  TgHarness h;
  build_listing4(h);
  auto result = h.run(2);
  ASSERT_TRUE(result.racy());
  const RaceReport& report = result.reports[0];
  const uint32_t lines[2] = {report.first.line, report.second.line};
  EXPECT_TRUE((lines[0] == 9 && lines[1] == 12) ||
              (lines[0] == 12 && lines[1] == 9));
}

TEST(Taskwait, OrdersTasks) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
        tf.st(ta.get(0), tf.c(1));
      });
      h.omp->taskwait(pf);
      h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
        tf.st(ta.get(0), tf.c(2));
      });
    });
  });
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(Dependences, OutInOrders) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      V xa = a.get(0);
      h.omp->task(pf, {.deps = {rt::dep_out(xa)}}, {xa},
                  [&](FnBuilder& tf, TaskArgs& ta) {
                    tf.st(ta.get(0), tf.c(1));
                  });
      h.omp->task(pf, {.deps = {rt::dep_in(xa)}}, {xa},
                  [&](FnBuilder& tf, TaskArgs& ta) {
                    tf.ld(ta.get(0));
                  });
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(Dependences, MissingDepIsRace) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      V xa = a.get(0);
      h.omp->task(pf, {.deps = {rt::dep_out(xa)}}, {xa},
                  [&](FnBuilder& tf, TaskArgs& ta) {
                    tf.st(ta.get(0), tf.c(1));
                  });
      // depend(in:x) missing on the reader:
      h.omp->task(pf, {}, {xa}, [&](FnBuilder& tf, TaskArgs& ta) {
        tf.ld(ta.get(0));
      });
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_TRUE(result.racy());
}

TEST(Dependences, MutexinoutsetSuppressesPair) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      V xa = a.get(0);
      for (int i = 0; i < 2; ++i) {
        h.omp->task(pf, {.deps = {rt::dep_mutexinoutset(xa)}}, {xa},
                    [&](FnBuilder& tf, TaskArgs& ta) {
                      V addr = ta.get(0);
                      tf.st(addr, tf.ld(addr) + tf.c(1));
                    });
      }
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
  EXPECT_GE(result.stats.pairs_mutex, 1u);
}

// --- §IV-B memory recycling -------------------------------------------------

void build_recycling(TgHarness& h) {
  // Listing 1: per-task malloc/write/free; the system allocator recycles.
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          V x = tf.malloc_(tf.c(4));
          tf.st(x, tf.c(1), 4);
          tf.free_(x);
        });
      });
      h.omp->taskwait(pf);
    });
  });
}

TEST(Recycling, SuppressedByAllocatorOverload) {
  TgHarness h;
  build_recycling(h);
  auto result = h.run(1);  // single thread forces back-to-back recycling
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(Recycling, FalsePositiveWithoutOverload) {
  TgHarness h;
  build_recycling(h);
  TaskgrindOptions topts;
  topts.replace_allocator = false;
  // Must treat serialized tasks as parallel to even compare them.
  topts.undeferred_parallel = true;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());  // the paper's §IV-B false positive
}


TEST(Recycling, FastAllocateCaptureRecyclingIsTheOpenGap) {
  // Paper §IV-B, final note: the runtime's own allocator
  // (__kmp_fast_allocate) also recycles, and the allocator overload does
  // NOT cover it - "extending the support of memory allocators is kept as
  // future work". With RtOptions::recycle_captures on, two serialized but
  // logically-parallel tasks that WRITE their firstprivate slots reuse the
  // same capture block, and Taskgrind reports the recycled-block conflict
  // even though free() is already a no-op.
  auto run_with = [](bool recycle) {
    TgHarness h;
    FnBuilder& f = *h.main_fn;
    h.omp->annotate_tasks_deferrable(f);
    h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
      h.omp->single(pf, [&] {
        pf.for_(0, 2, [&](Slot i) {
          h.omp->task(pf, {}, {i.get()}, [&](FnBuilder& tf, TaskArgs& a) {
            // Mutate the firstprivate in place (writes the task struct).
            tf.st(a.addr(0), tf.ld(a.addr(0)) + tf.c(1));
          });
        });
        h.omp->taskwait(pf);
      });
    });
    if (!h.main_fn->terminated()) h.main_fn->ret(h.main_fn->c(0));
    h.program = h.pb.take();
    h.tool = std::make_unique<TaskgrindTool>();
    rt::RtOptions opts;
    opts.num_threads = 1;
    opts.recycle_captures = recycle;
    rt::Execution exec(h.program, opts, h.tool.get(), {h.tool.get()});
    h.tool->attach(exec.vm());
    EXPECT_TRUE(exec.run().outcome.ok());
    return h.tool->run_analysis();
  };
  EXPECT_FALSE(run_with(false).racy());  // fresh blocks: clean
  EXPECT_TRUE(run_with(true).racy());    // recycled blocks: the open FP
}

TEST(Recycling, OverloadKeepsSemantics) {
  // With free() a no-op, addresses must NOT recycle.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V a = f.malloc_(f.c(32));
  f.free_(a);
  V b = f.malloc_(f.c(32));
  f.ret(a == b);
  h.run(1);
  EXPECT_EQ(h.exec_result.outcome.exit_code, 0);  // different addresses
}

// --- §IV-D segment-local stack reuse -----------------------------------------

void build_stack_reuse(TgHarness& h) {
  // Listing 3: both tasks write their own stack local x; with tied tasks on
  // one thread, x lands at the same guest address in both.
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          Slot x = tf.slot();
          x.set(42);
          x.set(x.get() + tf.c(1));
        });
      });
      h.omp->taskwait(pf);
    });
  });
}

TEST(StackReuse, SuppressedByFrameRegistration) {
  // The paper's mechanism (§IV-D): register the frame at segment start and
  // filter conflicts confined to reused frames. Disable the incarnation
  // improvement to exercise it.
  TgHarness h;
  build_stack_reuse(h);
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;  // serialized, but semantically parallel
  topts.stack_incarnations = false;
  auto result = h.run(1, topts);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
  EXPECT_GE(result.stats.suppressed_stack, 1u);
}

TEST(StackReuse, FalsePositiveWithoutSuppression) {
  TgHarness h;
  build_stack_reuse(h);
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  topts.suppress_stack = false;
  topts.stack_incarnations = false;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());  // the paper's §IV-D false positive
}

TEST(StackReuse, IncarnationRenamingAlsoSuppresses) {
  // The improvement: per-activation renaming makes reused frames distinct
  // addresses, so the conflict never exists - no suppression pass needed.
  TgHarness h;
  build_stack_reuse(h);
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  topts.suppress_stack = false;  // not needed in this mode
  topts.stack_incarnations = true;
  auto result = h.run(1, topts);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(StackReuse, IncarnationRenamingKeepsLiveFrameRaces) {
  // A true race on a frame that is live across both tasks must survive
  // renaming (same incarnation => same virtual address).
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      Slot shared = pf.slot();
      shared.set(0);
      V addr = shared.addr();
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {addr}, [&](FnBuilder& tf, TaskArgs& ta) {
          tf.st(ta.get(0), tf.c(7));
        });
      });
      h.omp->taskwait(pf);
    });
  });
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  topts.stack_incarnations = true;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());
}

TEST(StackReuse, IncarnationRenamingFixesAncestorFrameReuse) {
  // The paper's open false positive ("sibling tasks conflict on a memory
  // location in their parent segment stack frame"): cousins write their
  // own spawner's frame through pointers, and frame reuse aliases them.
  // Frame registration cannot suppress this; renaming can.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  // helper(out): spawns a task writing *out, waits for it.
  FnBuilder& helper = h.pb.fn("helper", "task.c", 0);
  {
    Slot local = helper.slot();
    V addr = local.addr();
    h.omp->task(helper, {}, {addr}, [&](FnBuilder& tf, TaskArgs& ta) {
      tf.st(ta.get(0), tf.c(1));
    });
    h.omp->taskwait(helper);
    helper.ret(local.get());
  }
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      // Two sibling tasks, each calling helper(): the helper frames reuse
      // stack addresses, and the grandchild writes go through pointers.
      for (int i = 0; i < 2; ++i) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          tf.call("helper", {});
        });
      }
      h.omp->taskwait(pf);
    });
  });

  TaskgrindOptions with_renaming;
  with_renaming.undeferred_parallel = true;
  with_renaming.stack_incarnations = true;
  auto fixed = h.run(1, with_renaming);
  EXPECT_FALSE(fixed.racy()) << fixed.reports[0].to_string();

  TgHarness h2;
  FnBuilder& f2 = *h2.main_fn;
  FnBuilder& helper2 = h2.pb.fn("helper", "task.c", 0);
  {
    Slot local = helper2.slot();
    V addr = local.addr();
    h2.omp->task(helper2, {}, {addr}, [&](FnBuilder& tf, TaskArgs& ta) {
      tf.st(ta.get(0), tf.c(1));
    });
    h2.omp->taskwait(helper2);
    helper2.ret(local.get());
  }
  h2.omp->parallel(f2, {}, [&](FnBuilder& pf, TaskArgs&) {
    h2.omp->single(pf, [&] {
      for (int i = 0; i < 2; ++i) {
        h2.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          tf.call("helper", {});
        });
      }
      h2.omp->taskwait(pf);
    });
  });
  TaskgrindOptions paper_mode;
  paper_mode.undeferred_parallel = true;
  paper_mode.stack_incarnations = false;
  auto fp = h2.run(1, paper_mode);
  EXPECT_TRUE(fp.racy());  // the prototype's reported false positive class
}

TEST(StackReuse, RealRaceOnParentStackStillReported) {
  // TMB 1001-stack_1 shape: tasks write a *parent* stack variable.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      Slot shared = pf.slot();
      shared.set(0);
      V addr = shared.addr();
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {addr}, [&](FnBuilder& tf, TaskArgs& ta) {
          tf.st(ta.get(0), tf.c(7));
        });
      });
      h.omp->taskwait(pf);
    });
  });
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());  // suppression must NOT hide this
}

// --- §IV-C thread-local storage ----------------------------------------------

void build_tls_writes(TgHarness& h) {
  // Listing 2: _Thread_local x; both tasks write x.
  h.pb.tls_var("x", 8);
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          V x = tf.tls("x");
          tf.st(x, tf.c(1));
        });
      });
      h.omp->taskwait(pf);
    });
  });
}

TEST(Tls, SameThreadSuppressed) {
  TgHarness h;
  build_tls_writes(h);
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  auto result = h.run(1, topts);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
  EXPECT_GE(result.stats.suppressed_tls, 1u);
}

TEST(Tls, FalsePositiveWithoutSuppression) {
  TgHarness h;
  build_tls_writes(h);
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  topts.suppress_tls = false;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());  // the paper's §IV-C false positive
}

TEST(Tls, ThreadprivateNotCoveredIsFalsePositive) {
  // DRB127/128 mechanism: OpenMP threadprivate is heap-cached per thread,
  // not TLS - Taskgrind's suppression does not recognize it.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 2, [&](Slot) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          V tp = h.omp->threadprivate(tf, "counter", 8);
          tf.st(tp, tf.c(1));
        });
      });
      h.omp->taskwait(pf);
    });
  });
  TaskgrindOptions topts;
  topts.undeferred_parallel = true;
  auto result = h.run(1, topts);
  EXPECT_TRUE(result.racy());  // known limitation, matches the paper
}

// --- §IV-A runtime non-determinacy / ignore-list ------------------------------

TEST(IgnoreList, RuntimeInternalsFilteredByDefault) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      pf.for_(0, 8, [&](Slot) {
        h.omp->task(pf, {}, {}, [](FnBuilder&, TaskArgs&) {});
      });
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(IgnoreList, NaiveInstrumentationFloodsReports) {
  // Empty ignore-list: recycled task descriptors written by __mnp_sched
  // conflict across independent tasks - the paper's "~400,000 reports on
  // LULESH before filtering" effect, in miniature. Two concurrent spawner
  // tasks: the second one's children reuse descriptors released by the
  // first one's children, and the two families are mutually unordered.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  auto spawner = [&](FnBuilder& tf, int64_t spin) {
    Slot sink = tf.slot();
    sink.set(0);
    tf.for_(0, spin, [&](Slot j) { sink.set(sink.get() + j.get()); });
    tf.for_(0, 4, [&](Slot) {
      h.omp->task(tf, {}, {}, [](FnBuilder&, TaskArgs&) {});
    });
    h.omp->taskwait(tf);
  };
  h.omp->parallel(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        spawner(tf, 0);
      });
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        // Delayed: by the time this spawns, the first family's recycled
        // descriptors are in the runtime's free pool.
        spawner(tf, 2000);
      });
      h.omp->taskwait(pf);
    });
  });
  TaskgrindOptions topts;
  topts.ignore_list.clear();
  auto result = h.run(2, topts, /*seed=*/1, /*quantum=*/100);
  EXPECT_TRUE(result.racy());

  // Sanity: with the default ignore-list the very same program is clean.
  TgHarness h2;
  FnBuilder& f2 = *h2.main_fn;
  auto spawner2 = [&](FnBuilder& tf, int64_t spin) {
    Slot sink = tf.slot();
    sink.set(0);
    tf.for_(0, spin, [&](Slot j) { sink.set(sink.get() + j.get()); });
    tf.for_(0, 4, [&](Slot) {
      h2.omp->task(tf, {}, {}, [](FnBuilder&, TaskArgs&) {});
    });
    h2.omp->taskwait(tf);
  };
  h2.omp->parallel(f2, f2.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h2.omp->single(pf, [&] {
      h2.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        spawner2(tf, 0);
      });
      h2.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        spawner2(tf, 2000);
      });
      h2.omp->taskwait(pf);
    });
  });
  auto clean = h2.run(2, {}, /*seed=*/1, /*quantum=*/100);
  EXPECT_FALSE(clean.racy());
}

TEST(IgnoreList, InstrumentListRestrictsToListedSymbols) {
  TgHarness h;
  build_listing4(h);
  TaskgrindOptions topts;
  topts.instrument_list = {"nothing_matches_this"};
  auto result = h.run(2, topts);
  EXPECT_FALSE(result.racy());
  EXPECT_EQ(h.tool->access_events(), 0u);
}

// --- undeferred serialization & the deferrable annotation --------------------

TEST(Undeferred, SerializedSingleThreadHidesRace) {
  TgHarness h;
  build_listing4(h);
  auto result = h.run(1);  // everything serialized & undeferred
  EXPECT_FALSE(result.racy());  // the LLVM-induced false negative
}

TEST(Undeferred, DeferrableAnnotationRestoresDetection) {
  TgHarness h;
  // Same as Listing 4 but with the paper's §V-B client-request annotation.
  FnBuilder& f = *h.main_fn;
  h.omp->annotate_tasks_deferrable(f);
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      for (int i = 0; i < 2; ++i) {
        h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
          tf.st(ta.get(0), tf.c(1));
        });
      }
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(1);
  EXPECT_TRUE(result.racy());  // detected despite serialization
}

// --- sync constructs end-to-end ---------------------------------------------

TEST(Sync, BarrierSeparatesPhases) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8 * 4));
  h.omp->parallel(f, f.c(4), {x}, [&](FnBuilder& pf, TaskArgs& a) {
    V tid = h.omp->thread_num(pf);
    pf.st(a.get(0) + tid * pf.c(8), tid);
    h.omp->barrier(pf);
    // Everyone reads everything: ordered by the barrier.
    Slot sum = pf.slot();
    sum.set(0);
    pf.for_(0, 4, [&](Slot i) {
      sum.set(sum.get() + pf.ld(a.get(0) + i.get() * pf.c(8)));
    });
  });
  auto result = h.run(4);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(Sync, MissingBarrierIsRace) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8 * 4));
  h.omp->parallel(f, f.c(4), {x}, [&](FnBuilder& pf, TaskArgs& a) {
    V tid = h.omp->thread_num(pf);
    pf.st(a.get(0) + tid * pf.c(8), tid);
    // no barrier
    Slot sum = pf.slot();
    sum.set(0);
    pf.for_(0, 4, [&](Slot i) {
      sum.set(sum.get() + pf.ld(a.get(0) + i.get() * pf.c(8)));
    });
  });
  auto result = h.run(4);
  EXPECT_TRUE(result.racy());
}

TEST(Sync, TaskgroupOrdersContinuation) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      h.omp->taskgroup(pf, [&] {
        h.omp->task(pf, {}, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
          // Nested descendant also inside the group.
          h.omp->task(tf, {}, {ta.get(0)},
                      [&](FnBuilder& tf2, TaskArgs& ta2) {
                        tf2.st(ta2.get(0), tf2.c(1));
                      });
        });
      });
      pf.st(a.get(0), pf.c(2));  // ordered after the whole group
    });
  });
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(Sync, SequentialRegionsOrderedEq1) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  for (int r = 0; r < 2; ++r) {
    h.omp->parallel(f, f.c(2), {x}, [&](FnBuilder& pf, TaskArgs& a) {
      h.omp->single(pf, [&] { pf.st(a.get(0), pf.c(r)); });
    });
  }
  // Post-mortem: the Eq. 1 region-window fast path must prune the
  // cross-region pair before any ordering query runs.
  TaskgrindOptions topts;
  topts.streaming = false;
  auto result = h.run(2, topts);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
  EXPECT_GE(result.stats.pairs_region_fast, 1u);
}

TEST(Sync, SequentialRegionsRetireStreamed) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V x = f.malloc_(f.c(8));
  for (int r = 0; r < 2; ++r) {
    h.omp->parallel(f, f.c(2), {x}, [&](FnBuilder& pf, TaskArgs& a) {
      h.omp->single(pf, [&] { pf.st(a.get(0), pf.c(r)); });
    });
  }
  // Streaming: by the time the second region's segments close, the first
  // region's are provably ordered before every growth point and retired -
  // the cross-region pair is never even enumerated.
  auto result = h.run(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
  EXPECT_TRUE(result.stats.streamed);
  EXPECT_GE(result.stats.segments_retired, 1u);
}

TEST(Sync, DetachOrdersThroughFulfill) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr handle = h.pb.global("handle", 8);
  V x = f.malloc_(f.c(8));
  h.omp->parallel(f, f.c(2), {x}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      TaskOpts opts;
      opts.detachable = true;
      h.omp->task(pf, opts, {a.get(0)}, [&](FnBuilder& tf, TaskArgs& ta) {
        V ev = h.omp->detach_event(tf);
        tf.st(ta.get(0), tf.c(1));
        tf.st(tf.c(static_cast<int64_t>(handle)), ev);
      });
      h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
        Slot ev = tf.slot();
        ev.set(tf.ld(tf.c(static_cast<int64_t>(handle))));
        tf.while_([&] { return ev.get() == tf.c(0); },
                  [&] {
                    tf.intrinsic(vex::IntrinsicId::kTaskYield, {}, {});
                    ev.set(tf.ld(tf.c(static_cast<int64_t>(handle))));
                  });
        h.omp->fulfill_event(tf, ev.get());
      });
      h.omp->taskwait(pf);
      pf.st(a.get(0), pf.c(2));  // after taskwait: ordered via fulfill
    });
  });
  auto result = h.run(2);
  // The write of x in the detached task must be ordered with the final
  // write; the busy-wait handle polling is a benign race we tolerate here
  // by checking only x's block.
  for (const auto& report : result.reports) {
    EXPECT_TRUE(report.alloc == nullptr || report.alloc->size != 8u)
        << report.to_string();
  }
}

// --- libc-internal state (heavyweight DBI visibility) -------------------------

TEST(LibcState, RaceThroughMemcpyDetected) {
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  V dst = f.malloc_(f.c(16));
  V src = f.malloc_(f.c(16));
  h.omp->parallel(f, {dst, src}, [&](FnBuilder& pf, TaskArgs& a) {
    h.omp->single(pf, [&] {
      for (int i = 0; i < 2; ++i) {
        h.omp->task(pf, {}, {a.get(0), a.get(1)},
                    [&](FnBuilder& tf, TaskArgs& ta) {
                      tf.call("memcpy", {ta.get(0), ta.get(1), tf.c(16)});
                    });
      }
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_TRUE(result.racy());  // memcpy writes observed inside libc
}

TEST(LibcState, PrintfBufferConflictDetected) {
  // Two parallel tasks printing: the shared libc stream buffer conflicts.
  // Compile-time instrumenters cannot see this code at all.
  TgHarness h;
  FnBuilder& f = *h.main_fn;
  h.omp->parallel(f, {}, [&](FnBuilder& pf, TaskArgs&) {
    h.omp->single(pf, [&] {
      for (int i = 0; i < 2; ++i) {
        h.omp->task(pf, {}, {}, [&](FnBuilder& tf, TaskArgs&) {
          tf.print_str("hello from a task\n");
        });
      }
      h.omp->taskwait(pf);
    });
  });
  auto result = h.run(2);
  EXPECT_TRUE(result.racy());
}

// --- parallel analysis (future work §VII) -------------------------------------

TEST(ParallelAnalysis, SameReportsAsSequential) {
  auto run_with_threads = [](int analysis_threads) {
    TgHarness h;
    FnBuilder& f = *h.main_fn;
    V x = f.malloc_(f.c(64));
    h.omp->parallel(f, {x}, [&](FnBuilder& pf, TaskArgs& a) {
      h.omp->single(pf, [&] {
        pf.for_(0, 8, [&](Slot i) {
          h.omp->task(pf, {}, {a.get(0), i.get()},
                      [&](FnBuilder& tf, TaskArgs& ta) {
                        // Overlapping strides: plenty of races.
                        tf.st(ta.get(0) + (ta.get(1) % tf.c(4)) * tf.c(8),
                              ta.get(1));
                      });
        });
        h.omp->taskwait(pf);
      });
    });
    TaskgrindOptions topts;
    topts.analysis_threads = analysis_threads;
    auto result = h.run(2, topts);
    std::vector<std::string> keys;
    for (const auto& report : result.reports) {
      keys.push_back(report.summary());
    }
    return keys;
  };
  const auto seq = run_with_threads(1);
  const auto par = run_with_threads(4);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace tg::core
