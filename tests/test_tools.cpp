// Baseline-tool tests: Archer's vector clocks, TaskSanitizer's limitations,
// ROMP's histories and crash modes, and the session layer.
#include <gtest/gtest.h>

#include "programs/registry.hpp"
#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "tools/archer.hpp"
#include "tools/romp.hpp"
#include "tools/session.hpp"
#include "tools/tasksan.hpp"
#include "vex/builder.hpp"

namespace tg::tools {
namespace {

using rt::Omp;
using rt::TaskArgs;
using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

// --- VectorClock -------------------------------------------------------------

TEST(VectorClock, CoversAndJoin) {
  VectorClock a;
  a.set(0, 5);
  a.set(2, 3);
  EXPECT_TRUE(a.covers(0, 5));
  EXPECT_TRUE(a.covers(0, 4));
  EXPECT_FALSE(a.covers(0, 6));
  EXPECT_TRUE(a.covers(1, 0));  // unknown components are 0
  EXPECT_FALSE(a.covers(1, 1));

  VectorClock b;
  b.set(1, 7);
  b.set(2, 1);
  a.join(b);
  EXPECT_TRUE(a.covers(1, 7));
  EXPECT_TRUE(a.covers(2, 3));  // join keeps the max
}

TEST(VectorClock, TickIsMonotone) {
  VectorClock a;
  a.tick(3);
  a.tick(3);
  EXPECT_EQ(a.get(3), 2u);
  EXPECT_EQ(a.get(0), 0u);
}

// --- session-level tool behaviour ---------------------------------------------

SessionResult run_named(const char* name, ToolKind tool, int threads,
                        uint64_t seed = 1) {
  const rt::GuestProgram* program = progs::find_program(name);
  EXPECT_NE(program, nullptr) << name;
  SessionOptions options;
  options.tool = tool;
  options.num_threads = threads;
  options.seed = seed;
  return run_session(*program, options);
}

TEST(Archer, DetectsCrossThreadRace) {
  auto result = run_named("DRB106-taskwaitmissing-orig", ToolKind::kArcher, 4);
  EXPECT_TRUE(result.racy());
  ASSERT_FALSE(result.report_texts.empty());
  EXPECT_NE(result.report_texts[0].find("ThreadSanitizer"),
            std::string::npos);
}

TEST(Archer, BlindWhenSerialized) {
  // Table II's single-thread row: everything runs on one worker, program
  // order hides the race.
  auto result = run_named("listing4-task", ToolKind::kArcher, 1);
  EXPECT_FALSE(result.racy());
  // The same program at 2 threads is caught.
  auto result2 = run_named("listing4-task", ToolKind::kArcher, 2);
  EXPECT_TRUE(result2.racy());
}

TEST(Archer, RespectsDependences) {
  auto result = run_named("DRB072-taskdep1-orig", ToolKind::kArcher, 4);
  EXPECT_FALSE(result.racy());
}

TEST(Archer, BlindToLibcInternals) {
  // DRB078 is clean user-side; its tasks print through the shared libc
  // buffer, which compile-time instrumentation cannot see.
  auto result = run_named("DRB078-taskdep2-orig", ToolKind::kArcher, 4);
  EXPECT_FALSE(result.racy());
}

TEST(Archer, ReportCountVariesWithSeed) {
  // The paper's "149 to 273": different schedules make different subsets
  // of the shadow race. Weak assertion: at least one seed differs OR all
  // agree (tiny programs may be stable) - just exercise several seeds.
  const rt::GuestProgram* program =
      progs::find_program("DRB106-taskwaitmissing-orig");
  ASSERT_NE(program, nullptr);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SessionOptions options;
    options.tool = ToolKind::kArcher;
    options.num_threads = 4;
    options.seed = seed;
    auto result = run_session(*program, options);
    EXPECT_TRUE(result.racy()) << "seed " << seed;
  }
}

TEST(TaskSan, NcsOnUnsupportedFeatures) {
  auto result =
      run_named("DRB095-doall2-taskloop-orig", ToolKind::kTaskSan, 4);
  EXPECT_EQ(result.status, SessionResult::Status::kNcs);
  EXPECT_EQ(classify(true, result), Verdict::kNcs);
}

TEST(TaskSan, RunsSupportedPrograms) {
  auto result = run_named("DRB027-taskdependmissing-orig",
                          ToolKind::kTaskSan, 4);
  EXPECT_EQ(result.status, SessionResult::Status::kOk);
  EXPECT_TRUE(result.racy());
}

TEST(TaskSan, GlobalDepMatchingMissesNonSiblingRace) {
  // DRB173: the dependence is between non-siblings, so there is a race;
  // TaskSanitizer's address-global matching wrongly orders the tasks.
  auto result = run_named("DRB173-non-sibling-taskdep", ToolKind::kTaskSan, 4);
  EXPECT_FALSE(result.racy());  // FN, as published
  // Taskgrind (per-parent dependences) catches it.
  auto tg = run_named("DRB173-non-sibling-taskdep", ToolKind::kTaskgrind, 4);
  EXPECT_TRUE(tg.racy());
}

TEST(TaskSan, NoStackSuppressionFalsePositive) {
  auto result = run_named("TMB1003-stack_3", ToolKind::kTaskSan, 1);
  EXPECT_TRUE(result.racy());  // FP, as published
  auto tg = run_named("TMB1003-stack_3", ToolKind::kTaskgrind, 1);
  EXPECT_FALSE(tg.racy());
}

TEST(TaskSan, TaskgroupBlindnessFalsePositive) {
  auto result = run_named("DRB107-taskgroup-orig", ToolKind::kTaskSan, 4);
  EXPECT_TRUE(result.racy());  // FP, as published
}

TEST(Romp, BareAddressReports) {
  auto result = run_named("listing4-task", ToolKind::kRomp, 4);
  ASSERT_TRUE(result.racy());
  ASSERT_FALSE(result.report_texts.empty());
  // Listing 5 shape: address, no file:line.
  EXPECT_NE(result.report_texts[0].find("data race found"),
            std::string::npos);
  EXPECT_EQ(result.report_texts[0].find(".c:"), std::string::npos);
}

TEST(Romp, SegvOnThreadprivate) {
  auto result = run_named("DRB127-tasking-threadprivate1-orig",
                          ToolKind::kRomp, 4);
  EXPECT_EQ(result.status, SessionResult::Status::kCrash);
  EXPECT_EQ(classify(false, result), Verdict::kSegv);
}

TEST(Romp, HistoryBudgetCrash) {
  const rt::GuestProgram* program = progs::find_program("dep-pipeline");
  ASSERT_NE(program, nullptr);
  SessionOptions options;
  options.tool = ToolKind::kRomp;
  options.num_threads = 2;
  options.romp_max_history_bytes = 64;  // absurdly small: forces the OOM
  auto result = run_session(*program, options);
  EXPECT_EQ(result.status, SessionResult::Status::kCrash);
}

TEST(Romp, CleanProgramsStayClean) {
  auto result = run_named("DRB072-taskdep1-orig", ToolKind::kRomp, 4);
  EXPECT_EQ(result.status, SessionResult::Status::kOk);
  EXPECT_FALSE(result.racy());
}

// --- verdict classification -----------------------------------------------------

TEST(Verdicts, Matrix) {
  SessionResult clean;
  SessionResult racy;
  racy.report_count = 3;
  EXPECT_EQ(classify(true, racy), Verdict::kTP);
  EXPECT_EQ(classify(true, clean), Verdict::kFN);
  EXPECT_EQ(classify(false, racy), Verdict::kFP);
  EXPECT_EQ(classify(false, clean), Verdict::kTN);

  SessionResult ncs;
  ncs.status = SessionResult::Status::kNcs;
  EXPECT_EQ(classify(true, ncs), Verdict::kNcs);
  SessionResult crash;
  crash.status = SessionResult::Status::kCrash;
  EXPECT_EQ(classify(false, crash), Verdict::kSegv);
}

TEST(Verdicts, Names) {
  EXPECT_STREQ(verdict_name(Verdict::kTP), "TP");
  EXPECT_STREQ(verdict_name(Verdict::kNcs), "ncs");
  EXPECT_STREQ(verdict_name(Verdict::kSegv), "segv");
}

TEST(Session, ToolNamesRoundTrip) {
  for (ToolKind kind : {ToolKind::kNone, ToolKind::kTaskgrind,
                        ToolKind::kArcher, ToolKind::kTaskSan,
                        ToolKind::kRomp, ToolKind::kFutures}) {
    EXPECT_EQ(tool_from_name(tool_name(kind)), kind);
  }
}

TEST(Session, UninstrumentedRunMatchesGuestSemantics) {
  auto result = run_named("cilk-fib", ToolKind::kNone, 4);
  EXPECT_EQ(result.status, SessionResult::Status::kOk);
  EXPECT_NE(result.output.find("fib(16) = 987"), std::string::npos);
}

TEST(Session, PeakMemoryGrowsUnderArcher) {
  auto none = run_named("DRB106-taskwaitmissing-orig", ToolKind::kNone, 4);
  auto archer =
      run_named("DRB106-taskwaitmissing-orig", ToolKind::kArcher, 4);
  EXPECT_GT(archer.peak_bytes, none.peak_bytes);  // shadow memory
}

}  // namespace
}  // namespace tg::tools
