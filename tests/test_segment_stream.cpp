// The `segment-stream-v2` wire schema (core/segment_stream, DESIGN.md §11).
// v1 acceptance and the v2-only kPairBatch frame are covered in
// test_pair_batch.cpp.
//
// Findings depend on these bytes: the spill archive and the shard transport
// share this one format, so every decode path must be strict. The suite
// covers clean round-trips (segment / pair / outcome / bye, incremental
// delivery at every chunk boundary) and the rejection surface: truncation
// at every prefix length must ask for more bytes - never error, never yield
// a frame - while bad magic, bad version, unknown frame types, oversized
// lengths, checksum mismatches and trailing payload bytes must all fail
// with a specific sticky error.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/segment_stream.hpp"

namespace tg::core {
namespace {

Segment make_segment(SegId id) {
  Segment seg;
  seg.id = id;
  seg.kind = SegKind::kTask;
  seg.task_id = 7;
  seg.seq_in_task = 3;
  seg.tid = 2;
  seg.region_id = 11;
  seg.first_access_loc = {4, 120};
  seg.reads.add(0x1000, 0x1040, {4, 121});
  seg.reads.add(0x2000, 0x2008, {4, 122});
  seg.writes.add(0x1020, 0x1030, {4, 123});
  seg.sp_at_start = 0x7fff0000;
  seg.stack_base = 0x7fff8000;
  seg.stack_limit = 0x7ff00000;
  seg.tcb = 0x5000;
  seg.mutexes = {3, 9, 42};
  seg.finalize_fingerprints();
  return seg;
}

std::vector<uint8_t> stream_with(FrameType type, uint32_t id,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> bytes;
  append_stream_header(bytes);
  append_frame(bytes, type, id, payload);
  return bytes;
}

TEST(SegmentStream, SegmentImageRoundTrips) {
  const Segment original = make_segment(17);
  std::vector<uint8_t> image;
  encode_segment(original, image);

  Segment decoded;
  std::string error;
  ASSERT_TRUE(decode_segment(image, decoded, &error)) << error;
  EXPECT_EQ(decoded.id, original.id);
  EXPECT_EQ(decoded.kind, original.kind);
  EXPECT_EQ(decoded.task_id, original.task_id);
  EXPECT_EQ(decoded.seq_in_task, original.seq_in_task);
  EXPECT_EQ(decoded.tid, original.tid);
  EXPECT_EQ(decoded.region_id, original.region_id);
  EXPECT_EQ(decoded.first_access_loc.file, original.first_access_loc.file);
  EXPECT_EQ(decoded.first_access_loc.line, original.first_access_loc.line);
  EXPECT_EQ(decoded.sp_at_start, original.sp_at_start);
  EXPECT_EQ(decoded.stack_base, original.stack_base);
  EXPECT_EQ(decoded.stack_limit, original.stack_limit);
  EXPECT_EQ(decoded.tcb, original.tcb);
  EXPECT_EQ(decoded.mutexes, original.mutexes);
  // The trees carry the analysis payload - bounds and sizes must survive.
  EXPECT_EQ(decoded.reads.bounds().lo, original.reads.bounds().lo);
  EXPECT_EQ(decoded.reads.bounds().hi, original.reads.bounds().hi);
  EXPECT_EQ(decoded.writes.bounds().lo, original.writes.bounds().lo);
  EXPECT_EQ(decoded.writes.bounds().hi, original.writes.bounds().hi);
  // Fingerprints are rebuilt/validated on decode and must stay usable.
  EXPECT_TRUE(decoded.fingerprints_ready());
  EXPECT_FALSE(fingerprints_disjoint(decoded, original));
}

TEST(SegmentStream, MetaPlusArenasComposesToFullImage) {
  // The shard producer ships spilled segments as metadata + the archive
  // record verbatim; that composition must equal encode_segment().
  const Segment seg = make_segment(5);
  std::vector<uint8_t> full;
  encode_segment(seg, full);
  std::vector<uint8_t> composed;
  encode_segment_meta(seg, composed);
  std::vector<uint8_t> arenas;
  encode_segment_arenas(seg, arenas);
  composed.insert(composed.end(), arenas.begin(), arenas.end());
  EXPECT_EQ(full, composed);
}

TEST(SegmentStream, EncodersAppendWithoutClearing) {
  const Segment seg = make_segment(1);
  std::vector<uint8_t> out = {0xAB, 0xCD};
  encode_segment_arenas(seg, out);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0xCD);
}

TEST(SegmentStream, ArenasDecodeRejectsTrailingAndTruncated) {
  const Segment seg = make_segment(2);
  std::vector<uint8_t> arenas;
  encode_segment_arenas(seg, arenas);

  Segment out;
  const size_t used = decode_segment_arenas(arenas.data(), arenas.size(), out);
  EXPECT_EQ(used, arenas.size());

  // Truncated images must decode to 0, not partially-filled trees.
  for (size_t cut : {size_t{0}, size_t{1}, arenas.size() / 2,
                     arenas.size() - 1}) {
    Segment truncated;
    EXPECT_EQ(decode_segment_arenas(arenas.data(), cut, truncated), 0u)
        << "cut at " << cut;
  }
}

TEST(SegmentStream, SegmentDecodeRejectsTrailingBytes) {
  const Segment seg = make_segment(3);
  std::vector<uint8_t> image;
  encode_segment(seg, image);
  image.push_back(0);
  Segment out;
  std::string error;
  EXPECT_FALSE(decode_segment(image, out, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(SegmentStream, PairOutcomeByeRoundTrip) {
  WirePair pair{41, 99};
  std::vector<uint8_t> bytes;
  encode_pair(pair, bytes);
  WirePair pair2;
  std::string error;
  ASSERT_TRUE(decode_pair(bytes, pair2, &error)) << error;
  EXPECT_EQ(pair2.a, 41u);
  EXPECT_EQ(pair2.b, 99u);

  WireOutcome outcome;
  outcome.a = 4;
  outcome.b = 9;
  outcome.raw_conflicts = 12;
  outcome.suppressed_stack = 3;
  outcome.suppressed_tls = 1;
  outcome.suppressed_user = 2;
  WireReport report;
  report.lo = 0x1000;
  report.hi = 0x1008;
  report.first = {7, 4, 0, 120, 1, "mergesort.c"};
  report.second = {8, 9, 1, 133, 0, "mergesort.c"};
  outcome.reports.push_back(report);
  bytes.clear();
  encode_outcome(outcome, bytes);
  WireOutcome outcome2;
  ASSERT_TRUE(decode_outcome(bytes, outcome2, &error)) << error;
  EXPECT_EQ(outcome2.raw_conflicts, 12u);
  EXPECT_EQ(outcome2.suppressed_user, 2u);
  ASSERT_EQ(outcome2.reports.size(), 1u);
  EXPECT_EQ(outcome2.reports[0].first.file, "mergesort.c");
  EXPECT_EQ(outcome2.reports[0].first.is_write, 1);
  EXPECT_EQ(outcome2.reports[0].second.line, 133u);
  EXPECT_EQ(outcome2.reports[0].hi, 0x1008u);

  WireBye bye{527, 61};
  bytes.clear();
  encode_bye(bye, bytes);
  WireBye bye2;
  ASSERT_TRUE(decode_bye(bytes, bye2, &error)) << error;
  EXPECT_EQ(bye2.pairs_scanned, 527u);
  EXPECT_EQ(bye2.segments_received, 61u);

  // Trailing bytes are corruption everywhere.
  bytes.push_back(0);
  EXPECT_FALSE(decode_bye(bytes, bye2, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(SegmentStream, DecoderDeliversFramesAtEveryChunking) {
  const Segment seg = make_segment(8);
  std::vector<uint8_t> payload;
  encode_segment(seg, payload);
  std::vector<uint8_t> bytes;
  append_stream_header(bytes);
  append_frame(bytes, FrameType::kSegment, 8, payload);
  std::vector<uint8_t> pair_payload;
  encode_pair({8, 9}, pair_payload);
  append_frame(bytes, FrameType::kPair, 0, pair_payload);
  append_frame(bytes, FrameType::kFinish, 0, {});

  // Byte-at-a-time delivery: the decoder must never error mid-frame and
  // must produce exactly the three frames in order.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (size_t i = 0; i < bytes.size(); ++i) {
    decoder.append(&bytes[i], 1);
    Frame frame;
    FrameDecoder::Status status;
    while ((status = decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_EQ(status, FrameDecoder::Status::kNeedMore)
        << "byte " << i << ": " << decoder.error();
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kSegment);
  EXPECT_EQ(frames[0].id, 8u);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(frames[1].type, FrameType::kPair);
  EXPECT_EQ(frames[2].type, FrameType::kFinish);
  EXPECT_TRUE(frames[2].payload.empty());
}

TEST(SegmentStream, TruncationIsNeedMoreNeverError) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  const std::vector<uint8_t> bytes =
      stream_with(FrameType::kArenas, 3, payload);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    decoder.append(bytes.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut << ": " << decoder.error();
  }
}

TEST(SegmentStream, BadMagicIsRejected) {
  std::vector<uint8_t> bytes = stream_with(FrameType::kFinish, 0, {});
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("bad magic (not a TGSEGS1 stream)"),
            std::string::npos)
      << decoder.error();
}

TEST(SegmentStream, BadVersionIsRejected) {
  std::vector<uint8_t> bytes = stream_with(FrameType::kFinish, 0, {});
  bytes[8] = 99;  // u32 version, little-endian
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("unsupported version 99"), std::string::npos)
      << decoder.error();
}

TEST(SegmentStream, UnknownFrameTypeIsRejected) {
  std::vector<uint8_t> bytes = stream_with(FrameType::kFinish, 0, {});
  bytes[kStreamHeaderBytes] = 0x77;  // frame type field
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("unknown frame type"), std::string::npos)
      << decoder.error();
}

TEST(SegmentStream, OversizedPayloadIsRejectedBeforeAllocation) {
  std::vector<uint8_t> bytes;
  append_stream_header(bytes);
  append_frame(bytes, FrameType::kArenas, 1, {});
  // Rewrite the u64 payload_len at offset header+8 to an absurd value. The
  // decoder must reject it from the 24 header bytes alone - it never has
  // (and never waits for) that much data.
  const uint64_t absurd = kMaxFramePayload + 1;
  std::memcpy(&bytes[kStreamHeaderBytes + 8], &absurd, sizeof(absurd));
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("oversized frame payload"),
            std::string::npos)
      << decoder.error();
}

TEST(SegmentStream, BitFlipFailsChecksumAndSticks) {
  std::vector<uint8_t> payload = {10, 20, 30, 40, 50};
  std::vector<uint8_t> bytes = stream_with(FrameType::kArenas, 2, payload);
  bytes.back() ^= 0x01;  // flip one payload bit

  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("frame checksum mismatch"),
            std::string::npos)
      << decoder.error();

  // The error is sticky: even a pristine follow-up frame yields nothing.
  std::vector<uint8_t> clean;
  append_frame(clean, FrameType::kFinish, 0, {});
  decoder.append(clean.data(), clean.size());
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
}

TEST(SegmentStream, FutureEdgeRoundTrip) {
  std::vector<uint8_t> payload;
  encode_future_edge(5, 9, payload);
  const std::vector<uint8_t> bytes =
      stream_with(FrameType::kFutureEdge, 5, payload);
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kFutureEdge);
  EXPECT_EQ(frame.id, 5u);
  WirePair edge;
  std::string error;
  ASSERT_TRUE(decode_future_edge(frame.payload, edge, &error)) << error;
  EXPECT_EQ(edge.a, 5u);
  EXPECT_EQ(edge.b, 9u);
}

TEST(SegmentStream, FutureEdgeRejectedInPreV3Streams) {
  // A v2 producer can never have emitted a get-edge; a frame claiming
  // otherwise is corruption, not compatibility.
  std::vector<uint8_t> payload;
  encode_future_edge(1, 2, payload);
  std::vector<uint8_t> bytes = stream_with(FrameType::kFutureEdge, 1, payload);
  bytes[8] = 2;  // u32 version, little-endian: claim a v2 stream
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("future-edge frame in a v2 stream"),
            std::string::npos)
      << decoder.error();
}

TEST(SegmentStream, MalformedPayloadsAreRejected) {
  std::string error;
  WirePair pair;
  std::vector<uint8_t> short_pair = {1, 2, 3};
  EXPECT_FALSE(decode_pair(short_pair, pair, &error));
  EXPECT_NE(error.find("truncated pair request"), std::string::npos) << error;

  WirePair edge;
  std::vector<uint8_t> short_edge = {7, 0, 0, 0, 1};
  EXPECT_FALSE(decode_future_edge(short_edge, edge, &error));
  EXPECT_FALSE(error.empty());

  WireOutcome outcome;
  std::vector<uint8_t> short_outcome = {0, 0, 0};
  EXPECT_FALSE(decode_outcome(short_outcome, outcome, &error));

  Segment seg;
  std::vector<uint8_t> garbage(64, 0xFF);
  EXPECT_FALSE(decode_segment(garbage, seg, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tg::core
