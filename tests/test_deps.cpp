// DepResolver unit tests: the OpenMP 5.x dependence matrix, sibling
// scoping, set generations and mutexinoutset mutex assignment.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "runtime/deps.hpp"

namespace tg::rt {
namespace {

struct Fixture {
  DepResolver resolver;
  std::vector<std::unique_ptr<Task>> tasks;
  Task parent;

  Fixture() { parent.id = 1000; }

  Task& task(std::initializer_list<Dep> deps, Task* custom_parent = nullptr) {
    auto t = std::make_unique<Task>();
    t->id = tasks.size();
    t->parent = custom_parent != nullptr ? custom_parent : &parent;
    t->deps = deps;
    tasks.push_back(std::move(t));
    return *tasks.back();
  }

  std::set<std::pair<uint64_t, uint64_t>> resolve(Task& t) {
    std::vector<DepEdge> edges;
    resolver.resolve(t, edges);
    std::set<std::pair<uint64_t, uint64_t>> result;
    for (const DepEdge& e : edges) result.emplace(e.pred->id, e.succ->id);
    return result;
  }
};

constexpr vex::GuestAddr kX = 0x1000;
constexpr vex::GuestAddr kY = 0x2000;

TEST(Deps, InAfterOut) {
  Fixture f;
  Task& w = f.task({{DepKind::kOut, kX}});
  Task& r = f.task({{DepKind::kIn, kX}});
  EXPECT_TRUE(f.resolve(w).empty());
  EXPECT_EQ(f.resolve(r), (std::set<std::pair<uint64_t, uint64_t>>{{0, 1}}));
}

TEST(Deps, ReadersDoNotChain) {
  Fixture f;
  Task& w = f.task({{DepKind::kOut, kX}});
  Task& r1 = f.task({{DepKind::kIn, kX}});
  Task& r2 = f.task({{DepKind::kIn, kX}});
  f.resolve(w);
  f.resolve(r1);
  auto edges = f.resolve(r2);
  // r2 depends on w only, never on r1.
  EXPECT_EQ(edges, (std::set<std::pair<uint64_t, uint64_t>>{{0, 2}}));
}

TEST(Deps, OutAfterReadersWaitsForAll) {
  Fixture f;
  Task& w1 = f.task({{DepKind::kOut, kX}});
  Task& r1 = f.task({{DepKind::kIn, kX}});
  Task& r2 = f.task({{DepKind::kIn, kX}});
  Task& w2 = f.task({{DepKind::kOut, kX}});
  f.resolve(w1);
  f.resolve(r1);
  f.resolve(r2);
  auto edges = f.resolve(w2);
  EXPECT_EQ(edges, (std::set<std::pair<uint64_t, uint64_t>>{
                       {0, 3}, {1, 3}, {2, 3}}));
}

TEST(Deps, OutOutChains) {
  Fixture f;
  Task& w1 = f.task({{DepKind::kOut, kX}});
  Task& w2 = f.task({{DepKind::kInOut, kX}});
  Task& w3 = f.task({{DepKind::kOut, kX}});
  f.resolve(w1);
  EXPECT_EQ(f.resolve(w2),
            (std::set<std::pair<uint64_t, uint64_t>>{{0, 1}}));
  EXPECT_EQ(f.resolve(w3),
            (std::set<std::pair<uint64_t, uint64_t>>{{1, 2}}));
}

TEST(Deps, InoutsetMembersMutuallyIndependent) {
  Fixture f;
  Task& w = f.task({{DepKind::kOut, kX}});
  Task& s1 = f.task({{DepKind::kInOutSet, kX}});
  Task& s2 = f.task({{DepKind::kInOutSet, kX}});
  Task& r = f.task({{DepKind::kIn, kX}});
  f.resolve(w);
  EXPECT_EQ(f.resolve(s1),
            (std::set<std::pair<uint64_t, uint64_t>>{{0, 1}}));
  EXPECT_EQ(f.resolve(s2),
            (std::set<std::pair<uint64_t, uint64_t>>{{0, 2}}));
  // The reader waits for every member of the set.
  EXPECT_EQ(f.resolve(r),
            (std::set<std::pair<uint64_t, uint64_t>>{{1, 3}, {2, 3}}));
}

TEST(Deps, InoutsetGenerationEndsAtNextWriter) {
  Fixture f;
  Task& s1 = f.task({{DepKind::kInOutSet, kX}});
  Task& s2 = f.task({{DepKind::kInOutSet, kX}});
  Task& w = f.task({{DepKind::kOut, kX}});
  Task& s3 = f.task({{DepKind::kInOutSet, kX}});
  f.resolve(s1);
  f.resolve(s2);
  EXPECT_EQ(f.resolve(w),
            (std::set<std::pair<uint64_t, uint64_t>>{{0, 2}, {1, 2}}));
  // A new set generation starts after the writer.
  EXPECT_EQ(f.resolve(s3),
            (std::set<std::pair<uint64_t, uint64_t>>{{2, 3}}));
}

TEST(Deps, MutexinoutsetAssignsMutexes) {
  Fixture f;
  Task& m1 = f.task({{DepKind::kMutexInOutSet, kX}});
  Task& m2 = f.task({{DepKind::kMutexInOutSet, kX}});
  f.resolve(m1);
  f.resolve(m2);
  ASSERT_EQ(m1.mutexes.size(), 1u);
  ASSERT_EQ(m2.mutexes.size(), 1u);
  EXPECT_EQ(m1.mutexes[0], m2.mutexes[0]);  // same exclusion object
  // No ordering edges between the members themselves.
}

TEST(Deps, DistinctAddressesIndependent) {
  Fixture f;
  Task& wx = f.task({{DepKind::kOut, kX}});
  Task& wy = f.task({{DepKind::kOut, kY}});
  f.resolve(wx);
  EXPECT_TRUE(f.resolve(wy).empty());
}

TEST(Deps, MultipleDepsUnion) {
  Fixture f;
  Task& wx = f.task({{DepKind::kOut, kX}});
  Task& wy = f.task({{DepKind::kOut, kY}});
  Task& both = f.task({{DepKind::kIn, kX}, {DepKind::kIn, kY}});
  f.resolve(wx);
  f.resolve(wy);
  EXPECT_EQ(f.resolve(both),
            (std::set<std::pair<uint64_t, uint64_t>>{{0, 2}, {1, 2}}));
}

TEST(Deps, EdgesDedupedPerPredecessor) {
  Fixture f;
  Task& w = f.task({{DepKind::kOut, kX}, {DepKind::kOut, kY}});
  Task& r = f.task({{DepKind::kIn, kX}, {DepKind::kIn, kY}});
  f.resolve(w);
  std::vector<DepEdge> edges;
  f.resolver.resolve(r, edges);
  EXPECT_EQ(edges.size(), 1u);  // one edge even with two matching deps
}

TEST(Deps, SiblingScopingSeparatesParents) {
  Fixture f;
  Task other_parent;
  other_parent.id = 2000;
  Task& w = f.task({{DepKind::kOut, kX}});
  Task& r = f.task({{DepKind::kIn, kX}}, &other_parent);
  f.resolve(w);
  // Different generating task region: no edge (the DRB173 rule).
  EXPECT_TRUE(f.resolve(r).empty());
}

TEST(Deps, ForgetParentDropsState) {
  Fixture f;
  Task& w = f.task({{DepKind::kOut, kX}});
  f.resolve(w);
  f.resolver.forget_parent(f.parent);
  Task& r = f.task({{DepKind::kIn, kX}});
  EXPECT_TRUE(f.resolve(r).empty());
}

}  // namespace
}  // namespace tg::rt
