// Differential hardening of the memory-pressure governor.
//
// The governor (taskgrind.max_tree_bytes) spills the coldest closed
// segments' interval-tree arenas to a disk archive and reloads them on
// demand at adjudication - a representation change only. The post-mortem
// pass stays the verification oracle: under every ceiling and worker count
// the findings must be byte-identical, and when a ceiling is set the
// accounted interval-tree peak must respect it.
//
// Covered inputs: the full guest-program registry, a sweep of random
// dependence/taskwait programs (both also under a deliberately absurd
// 4 KiB ceiling, so spilling is exercised on small graphs too), and the
// racy mini-LULESH, whose unbounded tree peak (~520 KiB at these
// parameters) makes the 256 KiB ceiling provably bite.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "lulesh/lulesh.hpp"
#include "programs/registry.hpp"
#include "random_program.hpp"
#include "tools/session.hpp"

namespace tg::tools {
namespace {

constexpr uint64_t kSmallCeiling = 256 * 1024;
constexpr uint64_t kLargeCeiling = 4 * 1024 * 1024;
constexpr uint64_t kTinyCeiling = 4 * 1024;
constexpr uint64_t kUnlimited = 0;

SessionResult run_governed(const rt::GuestProgram& program,
                           uint64_t max_tree_bytes, int analysis_threads,
                           int num_threads = 2,
                           const std::string& spill_dir = "",
                           bool use_fingerprints = true) {
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = num_threads;
  options.taskgrind.streaming = true;
  options.taskgrind.analysis_threads = analysis_threads;
  options.taskgrind.max_tree_bytes = max_tree_bytes;
  options.taskgrind.spill_dir = spill_dir;
  options.taskgrind.use_fingerprints = use_fingerprints;
  return run_session(program, options);
}

SessionResult run_oracle(const rt::GuestProgram& program,
                         int num_threads = 2) {
  SessionOptions options;
  options.tool = ToolKind::kTaskgrind;
  options.num_threads = num_threads;
  options.taskgrind.streaming = false;
  return run_session(program, options);
}

void expect_identical_findings(const SessionResult& oracle,
                               const SessionResult& governed,
                               const std::string& label) {
  ASSERT_EQ(oracle.status, governed.status) << label;
  EXPECT_EQ(oracle.report_count, governed.report_count) << label;
  EXPECT_EQ(oracle.raw_report_count, governed.raw_report_count) << label;
  ASSERT_EQ(oracle.report_texts.size(), governed.report_texts.size())
      << label;
  for (size_t i = 0; i < oracle.report_texts.size(); ++i) {
    EXPECT_EQ(oracle.report_texts[i], governed.report_texts[i])
        << label << " report " << i;
  }
  EXPECT_EQ(oracle.analysis_stats.raw_conflicts,
            governed.analysis_stats.raw_conflicts)
      << label;
  EXPECT_EQ(oracle.analysis_stats.suppressed_stack,
            governed.analysis_stats.suppressed_stack)
      << label;
  EXPECT_EQ(oracle.analysis_stats.suppressed_tls,
            governed.analysis_stats.suppressed_tls)
      << label;
}

void expect_ceiling_respected(const SessionResult& governed,
                              uint64_t ceiling, const std::string& label) {
  if (ceiling == kUnlimited) {
    EXPECT_EQ(governed.analysis_stats.segments_spilled, 0u) << label;
    EXPECT_EQ(governed.analysis_stats.spill_bytes_written, 0u) << label;
    EXPECT_EQ(governed.analysis_stats.spill_reloads, 0u) << label;
    EXPECT_EQ(governed.analysis_stats.enqueue_stalls, 0u) << label;
    return;
  }
  // The tiny ceiling is below what a handful of open segments already
  // allocate, so only identity (not the bound) is checkable there - its job
  // is to force heavy spilling on small graphs.
  if (ceiling > kTinyCeiling) {
    EXPECT_LE(governed.analysis_stats.peak_tree_bytes, ceiling) << label;
  }
}

}  // namespace

TEST(PressureDifferential, RegistryPrograms) {
  for (const rt::GuestProgram& program : progs::all_programs()) {
    const SessionResult oracle = run_oracle(program);
    for (uint64_t ceiling : {kTinyCeiling, kSmallCeiling, kLargeCeiling}) {
      for (int threads : {1, 2, 4, 8}) {
        const SessionResult governed =
            run_governed(program, ceiling, threads);
        const std::string label = program.name + " ceiling " +
                                  std::to_string(ceiling) + " @" +
                                  std::to_string(threads);
        expect_identical_findings(oracle, governed, label);
        expect_ceiling_respected(governed, ceiling, label);
        EXPECT_TRUE(governed.analysis_stats.streamed) << label;
        if (ceiling == kTinyCeiling) {
          // The fallback path (no fingerprint filter) must stay
          // byte-identical too - this is the lane --no-fingerprints takes.
          const SessionResult no_fp = run_governed(
              program, ceiling, threads, /*num_threads=*/2,
              /*spill_dir=*/"", /*use_fingerprints=*/false);
          expect_identical_findings(oracle, no_fp, label + " no-fp");
          EXPECT_EQ(no_fp.analysis_stats.pairs_skipped_fingerprint, 0u)
              << label;
        }
      }
    }
  }
}

TEST(PressureDifferential, RandomPrograms) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const progs::RandomProgram spec = progs::RandomProgram::generate(seed);
    const rt::GuestProgram program = spec.to_guest(seed);
    const SessionResult oracle = run_oracle(program);
    for (uint64_t ceiling : {kTinyCeiling, kSmallCeiling}) {
      for (int threads : {1, 2, 4, 8}) {
        const SessionResult governed =
            run_governed(program, ceiling, threads);
        expect_identical_findings(oracle, governed,
                                  "seed " + std::to_string(seed) +
                                      " ceiling " + std::to_string(ceiling) +
                                      " @" + std::to_string(threads));
        expect_ceiling_respected(governed, ceiling,
                                 "seed " + std::to_string(seed));
      }
    }
  }
}

TEST(PressureDifferential, LuleshCeilingSweep) {
  lulesh::LuleshParams params;
  params.s = 10;
  params.iters = 8;
  params.tel = 8;
  params.tnl = 8;
  params.racy = true;
  const rt::GuestProgram program = lulesh::make_lulesh(params);

  const SessionResult oracle = run_oracle(program, /*num_threads=*/1);
  // The ceiling must bite: the unbounded run's tree peak clears the small
  // ceiling by ~2x, otherwise this sweep proves nothing.
  const SessionResult unbounded =
      run_governed(program, kUnlimited, 1, /*num_threads=*/1);
  ASSERT_GT(unbounded.analysis_stats.peak_tree_bytes, kSmallCeiling);

  for (uint64_t ceiling : {kSmallCeiling, kLargeCeiling, kUnlimited}) {
    for (int threads : {1, 2, 4, 8}) {
      const SessionResult governed =
          run_governed(program, ceiling, threads, /*num_threads=*/1);
      const std::string label = "lulesh ceiling " + std::to_string(ceiling) +
                                " @" + std::to_string(threads);
      expect_identical_findings(oracle, governed, label);
      expect_ceiling_respected(governed, ceiling, label);
      if (ceiling == kSmallCeiling) {
        // Below the unbounded peak the governor must actually have worked.
        // Every deferred pair is either reloaded and scanned or settled
        // reload-free by the fingerprints - on this strided kernel the
        // fingerprint filter routinely gets all of them, so reloads alone
        // may legitimately be zero.
        EXPECT_GT(governed.analysis_stats.segments_spilled, 0u) << label;
        EXPECT_GT(governed.analysis_stats.spill_bytes_written, 0u) << label;
        // Victim selection prefers segments fingerprint-disjoint from every
        // open segment (they can never be paired against what is still
        // growing, so spilling them risks no reload). On this kernel such
        // victims exist at the small ceiling.
        EXPECT_GT(governed.analysis_stats.spill_victims_disjoint, 0u)
            << label;
        EXPECT_LE(governed.analysis_stats.spill_victims_disjoint,
                  governed.analysis_stats.segments_spilled)
            << label;
        EXPECT_GT(governed.analysis_stats.spill_reloads +
                      governed.analysis_stats.spill_reloads_avoided,
                  0u)
            << label;
      }
    }
  }
}

// The tentpole claim of the fingerprint layer under pressure: deferred
// pairs whose partner was spilled are settled at enqueue time from the
// resident fingerprints, so adjudication at finish() skips the disk reload
// entirely - with findings byte-identical to both the oracle and the
// fingerprint-off governed run.
TEST(PressureDifferential, FingerprintsAvoidReloads) {
  lulesh::LuleshParams params;
  params.s = 10;
  params.iters = 8;
  params.tel = 8;
  params.tnl = 8;
  params.racy = true;
  const rt::GuestProgram program = lulesh::make_lulesh(params);

  const SessionResult oracle = run_oracle(program, /*num_threads=*/1);
  for (int threads : {1, 2, 4, 8}) {
    const std::string label = "lulesh fp sweep @" + std::to_string(threads);
    const SessionResult with_fp = run_governed(
        program, kSmallCeiling, threads, /*num_threads=*/1);
    const SessionResult without_fp = run_governed(
        program, kSmallCeiling, threads, /*num_threads=*/1,
        /*spill_dir=*/"", /*use_fingerprints=*/false);
    expect_identical_findings(oracle, with_fp, label + " fp-on");
    expect_identical_findings(oracle, without_fp, label + " fp-off");

    // The filter must have settled spilled-partner pairs without the
    // archive, and can never make the reload count worse: every reload it
    // allows is one the fingerprint-off run also pays.
    EXPECT_GT(with_fp.analysis_stats.spill_reloads_avoided, 0u) << label;
    EXPECT_LE(with_fp.analysis_stats.spill_reloads,
              without_fp.analysis_stats.spill_reloads)
        << label;
    EXPECT_GT(without_fp.analysis_stats.spill_reloads, 0u) << label;
    EXPECT_EQ(without_fp.analysis_stats.spill_reloads_avoided, 0u) << label;
    EXPECT_GT(with_fp.analysis_stats.fingerprint_bytes, 0u) << label;
  }
}

TEST(PressureDifferential, ExplicitSpillDirIsEmptiedAfterRun) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "tg-pressure-test-spill";
  std::filesystem::create_directories(dir);

  lulesh::LuleshParams params;
  params.s = 10;
  params.iters = 8;
  params.tel = 8;
  params.tnl = 8;
  params.racy = true;
  const rt::GuestProgram program = lulesh::make_lulesh(params);
  const SessionResult governed = run_governed(
      program, kSmallCeiling, 2, /*num_threads=*/1, dir.string());
  EXPECT_GT(governed.analysis_stats.segments_spilled, 0u);
  // The archive is removed when the session tears down - the directory the
  // user supplied is left behind, empty.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace tg::tools
