// Qthreads front-end + full/empty-bit tests (the paper's §III-A(c) future
// work, implemented): execution semantics of FEB words, and the
// happens-before edges they must contribute to every analysis tool.
#include <gtest/gtest.h>

#include "core/taskgrind.hpp"
#include "runtime/execution.hpp"
#include "runtime/frontend.hpp"
#include "tools/archer.hpp"
#include "vex/builder.hpp"

namespace tg::rt {
namespace {

using vex::FnBuilder;
using vex::GuestAddr;
using vex::ProgramBuilder;
using vex::Slot;
using vex::V;

struct QtHarness {
  QtHarness() : pb("qt_test") {
    install_runtime_abi(pb);
    qt = std::make_unique<Qthreads>(pb);
    main_fn = &pb.fn("main", "qt_test.c");
  }

  ExecResult run(int threads, uint64_t seed = 1) {
    if (!main_fn->terminated()) main_fn->ret(main_fn->c(0));
    program = pb.take();
    RtOptions opts;
    opts.num_threads = threads;
    opts.seed = seed;
    return execute_program(program, opts, nullptr, {});
  }

  core::AnalysisResult run_taskgrind(int threads) {
    if (!main_fn->terminated()) main_fn->ret(main_fn->c(0));
    program = pb.take();
    tool = std::make_unique<core::TaskgrindTool>();
    RtOptions opts;
    opts.num_threads = threads;
    Execution exec(program, opts, tool.get(), {tool.get()});
    tool->attach(exec.vm());
    exec_result = exec.run();
    EXPECT_TRUE(exec_result.outcome.ok());
    return tool->run_analysis();
  }

  ProgramBuilder pb;
  std::unique_ptr<Qthreads> qt;
  FnBuilder* main_fn;
  vex::Program program;
  std::unique_ptr<core::TaskgrindTool> tool;
  ExecResult exec_result;
};

// --- execution semantics -----------------------------------------------------

TEST(Feb, WriteEFThenReadFETransfersValue) {
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    h.qt->writeEF(pf, wa, pf.c(42));
    V got = h.qt->readFE(pf, wa);
    pf.call("print_i64", {got});
  });
  auto result = h.run(2);
  EXPECT_TRUE(result.outcome.ok());
  EXPECT_EQ(result.output, "42");
}

TEST(Feb, ReadFEBlocksUntilProducerWrites) {
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  const GuestAddr out = h.pb.global("out", 8);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    // Consumer forked first: it must park until the producer runs.
    h.qt->fork(pf, {wa}, [&](FnBuilder& tf, TaskArgs& ta) {
      V got = h.qt->readFE(tf, ta.get(0));
      tf.st(tf.c(static_cast<int64_t>(out)), got);
    });
    h.qt->fork(pf, {wa}, [&](FnBuilder& tf, TaskArgs& ta) {
      // Burn some cycles so the consumer genuinely parks first.
      Slot spin = tf.slot();
      spin.set(0);
      tf.for_(0, 500, [&](Slot j) { spin.set(spin.get() + j.get()); });
      h.qt->writeEF(tf, ta.get(0), tf.c(7));
    });
    h.qt->join_all(pf);
  });
  auto result = h.run(2);
  ASSERT_TRUE(result.outcome.ok());
  // Read the result back through the harness exit code path.
  EXPECT_TRUE(result.outcome.exit_code == 0);
}

TEST(Feb, WriteEFBlocksWhileFull) {
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  const GuestAddr log = h.pb.global("log", 8 * 4);
  const GuestAddr cursor = h.pb.global("cursor", 8);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    // Producer writes twice; the second write must wait for the consume.
    h.qt->fork(pf, {wa}, [&](FnBuilder& tf, TaskArgs& ta) {
      h.qt->writeEF(tf, ta.get(0), tf.c(1));
      h.qt->writeEF(tf, ta.get(0), tf.c(2));
    });
    h.qt->fork(pf, {wa}, [&](FnBuilder& tf, TaskArgs& ta) {
      for (int i = 0; i < 2; ++i) {
        V got = h.qt->readFE(tf, ta.get(0));
        V ca = tf.c(static_cast<int64_t>(cursor));
        V cur = tf.ld(ca);
        tf.st(tf.c(static_cast<int64_t>(log)) + cur * tf.c(8), got);
        tf.st(ca, cur + tf.c(1));
      }
    });
    h.qt->join_all(pf);
  });
  Slot ok = h.main_fn->slot();
  FnBuilder& f2 = *h.main_fn;
  ok.set(0);
  f2.if_(f2.ld(f2.c(static_cast<int64_t>(log))) == f2.c(1), [&] {
    f2.if_(f2.ld(f2.c(static_cast<int64_t>(log) + 8)) == f2.c(2),
           [&] { ok.set(1); });
  });
  f2.ret(ok.get());
  auto result = h.run(2);
  EXPECT_EQ(result.outcome.exit_code, 1);  // values arrive in order
}

TEST(Feb, FillAndEmptyControlStatus) {
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  h.qt->program(f, f.c(1), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    pf.st(wa, pf.c(9));       // plain store
    h.qt->fill(pf, wa);       // mark full without writing
    V got = h.qt->readFF(pf, wa);  // read, stays full
    V got2 = h.qt->readFE(pf, wa);  // read, empties
    pf.call("print_i64", {got});
    pf.call("print_i64", {got2});
    h.qt->writeEF(pf, wa, pf.c(5));  // now empty: succeeds immediately
  });
  auto result = h.run(1);
  EXPECT_TRUE(result.outcome.ok());
  EXPECT_EQ(result.output, "99");
}

TEST(Feb, UnmatchedReadDeadlocks) {
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    h.qt->readFE(pf, pf.c(static_cast<int64_t>(word)));  // nobody fills
  });
  auto result = h.run(2);
  EXPECT_EQ(result.outcome.status, RunOutcome::Status::kDeadlock);
}

// --- analysis: FEB edges must order accesses ---------------------------------

void build_feb_pipeline(QtHarness& h, bool use_feb) {
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  const GuestAddr data = h.pb.global("data", 8);
  h.qt->omp().annotate_tasks_deferrable(f);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    V da = pf.c(static_cast<int64_t>(data));
    // Producer: writes the payload, then publishes through the FEB word.
    h.qt->fork(pf, {wa, da}, [&](FnBuilder& tf, TaskArgs& ta) {
      tf.st(ta.get(1), tf.c(123));
      if (use_feb) h.qt->writeEF(tf, ta.get(0), tf.c(1));
    });
    // Consumer: waits on the FEB word, then reads the payload.
    h.qt->fork(pf, {wa, da}, [&](FnBuilder& tf, TaskArgs& ta) {
      if (use_feb) h.qt->readFE(tf, ta.get(0));
      tf.ld(ta.get(1));
    });
    h.qt->join_all(pf);
  });
}

TEST(FebAnalysis, PublishThroughFebOrdersPayload) {
  QtHarness h;
  build_feb_pipeline(h, /*use_feb=*/true);
  auto result = h.run_taskgrind(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(FebAnalysis, WithoutFebThePayloadRaces) {
  QtHarness h;
  build_feb_pipeline(h, /*use_feb=*/false);
  auto result = h.run_taskgrind(2);
  EXPECT_TRUE(result.racy());
}

TEST(FebAnalysis, EmptyChannelOrdersWriterAfterReader) {
  // Consumer reads (emptying), then producer's second writeEF proceeds:
  // the writer's post-wait accesses are ordered after the reader's
  // pre-empty accesses via the empty channel.
  QtHarness h;
  FnBuilder& f = *h.main_fn;
  const GuestAddr word = h.pb.global("word", 8);
  const GuestAddr scratch = h.pb.global("scratch", 8);
  h.qt->omp().annotate_tasks_deferrable(f);
  h.qt->program(f, f.c(2), {}, [&](FnBuilder& pf, TaskArgs&) {
    V wa = pf.c(static_cast<int64_t>(word));
    V sa = pf.c(static_cast<int64_t>(scratch));
    h.qt->fork(pf, {wa, sa}, [&](FnBuilder& tf, TaskArgs& ta) {
      h.qt->writeEF(tf, ta.get(0), tf.c(1));
      h.qt->writeEF(tf, ta.get(0), tf.c(2));  // waits for the empty
      tf.st(ta.get(1), tf.c(99));             // after the reader's read
    });
    h.qt->fork(pf, {wa, sa}, [&](FnBuilder& tf, TaskArgs& ta) {
      tf.ld(ta.get(1));                  // reads scratch BEFORE emptying
      h.qt->readFE(tf, ta.get(0));       // empties: releases the writer
      h.qt->readFE(tf, ta.get(0));       // consume the second value
    });
    h.qt->join_all(pf);
  });
  auto result = h.run_taskgrind(2);
  EXPECT_FALSE(result.racy()) << result.reports[0].to_string();
}

TEST(FebAnalysis, ArcherAlsoLearnsFebEdges) {
  // Build the FEB pipeline and run it under the Archer model at 2 threads:
  // the publish edge must order the payload accesses for vector clocks too.
  QtHarness h;
  build_feb_pipeline(h, /*use_feb=*/true);
  if (!h.main_fn->terminated()) h.main_fn->ret(h.main_fn->c(0));
  h.program = h.pb.take();
  tools::ArcherTool archer;
  RtOptions opts;
  opts.num_threads = 2;
  Execution exec(h.program, opts, &archer, {&archer});
  archer.attach(exec.vm());
  EXPECT_TRUE(exec.run().outcome.ok());
  EXPECT_EQ(archer.report_count(), 0u);
}

}  // namespace
}  // namespace tg::rt
