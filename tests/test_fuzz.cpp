// Schedule-fuzzer smoke tests: the seed/perturbation sweep must surface a
// schedule-dependent race the default run misses, and every certificate it
// emits must replay to its expected report set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <unistd.h>

#include "programs/registry.hpp"
#include "tools/fuzz.hpp"
#include "tools/session.hpp"

namespace tg::tools {
namespace {

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/tg-fuzz-XXXXXX";
    path_ = mkdtemp(pattern);
  }
  ~TempDir() {
    if (path_.empty()) return;
    // Only this test writes here; remove whatever the fuzzer produced.
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

FuzzOptions smoke_options(int threads, int runs) {
  FuzzOptions options;
  options.base.tool = ToolKind::kTaskgrind;
  options.base.num_threads = threads;
  options.runs = runs;
  return options;
}

TEST(FuzzPerturbation, TaxonomyIsDeterministic) {
  // Run 0 is always the unperturbed baseline.
  EXPECT_FALSE(fuzz_perturbation(0, 4).any());
  for (int threads : {1, 2, 4, 8}) {
    for (int run = 1; run < 16; ++run) {
      const rt::SchedulePerturbation a = fuzz_perturbation(run, threads);
      const rt::SchedulePerturbation b = fuzz_perturbation(run, threads);
      EXPECT_TRUE(a == b);
      EXPECT_EQ(a.pop_fifo, run % 2 == 0);
      EXPECT_EQ(a.yield_period != 0, run % 3 == 0);
      EXPECT_LT(a.steal_rotation, static_cast<uint64_t>(std::max(1, threads)));
    }
  }
}

TEST(FuzzSweep, SurfacesScheduleDependentRace) {
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);

  // The default-seed single run must miss the armed race...
  SessionOptions single;
  single.tool = ToolKind::kTaskgrind;
  single.num_threads = 2;
  const SessionResult baseline = run_session(*program, single);
  ASSERT_EQ(baseline.status, SessionResult::Status::kOk);

  // ...and the 16-run sweep must find it.
  const FuzzResult result = run_fuzz(*program, smoke_options(2, 16));
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.runs.size(), 16u);
  EXPECT_EQ(result.baseline_keys.size(), baseline.report_keys.size());
  EXPECT_FALSE(result.schedule_dependent_keys.empty())
      << "sweep found no report beyond the default schedule";
  EXPECT_FALSE(result.certificates.empty());
  EXPECT_TRUE(result.all_certificates_verified());

  // Every schedule-dependent key is attested by some verified certificate.
  std::set<std::string> witnessed;
  for (const FuzzCertificate& cert : result.certificates) {
    EXPECT_TRUE(cert.verified) << "certificate from run " << cert.run;
    for (const std::string& key : cert.new_keys) witnessed.insert(key);
  }
  for (const std::string& key : result.schedule_dependent_keys) {
    EXPECT_TRUE(witnessed.count(key)) << key;
  }
}

TEST(FuzzSweep, CertificatesReplayFromDisk) {
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());

  FuzzOptions options = smoke_options(2, 16);
  options.certificate_dir = dir.path();
  const FuzzResult result = run_fuzz(*program, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.certificates.empty());

  // Round-trip each certificate through its file and replay it: the
  // regression workflow a user would run from a bug report.
  for (const FuzzCertificate& cert : result.certificates) {
    ASSERT_FALSE(cert.file.empty());
    core::ScheduleTrace trace;
    std::string error;
    ASSERT_TRUE(core::ScheduleTrace::load(cert.file, trace, &error)) << error;

    SessionOptions replay;
    replay.tool = ToolKind::kTaskgrind;
    replay.replay_from = &trace;
    const SessionResult replayed = run_session(*program, replay);
    ASSERT_EQ(replayed.status, SessionResult::Status::kOk);
    std::vector<std::string> keys = replayed.report_keys;
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(keys, cert.expected_keys);
  }
}

TEST(FuzzSweep, StableAcrossRepeats) {
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);
  const FuzzResult first = run_fuzz(*program, smoke_options(2, 8));
  const FuzzResult second = run_fuzz(*program, smoke_options(2, 8));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(fuzz_json(first), fuzz_json(second));
}

TEST(FuzzSweep, JsonStructure) {
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);
  const FuzzResult result = run_fuzz(*program, smoke_options(2, 6));
  ASSERT_TRUE(result.ok);
  const std::string json = fuzz_json(result);
  EXPECT_NE(json.find("\"schema\":\"taskgrind-fuzz-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"program\":\"sched-flag\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\""), std::string::npos);
  EXPECT_NE(json.find("\"steal_rotation\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_dependent_reports\""), std::string::npos);
  EXPECT_NE(json.find("\"verified_certificates\""), std::string::npos);
}

TEST(FuzzSweep, RejectsBadOptions) {
  const auto* program = progs::find_program("sched-flag");
  ASSERT_NE(program, nullptr);

  FuzzOptions wrong_tool = smoke_options(2, 4);
  wrong_tool.base.tool = ToolKind::kTaskSan;
  const FuzzResult r1 = run_fuzz(*program, wrong_tool);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("taskgrind"), std::string::npos);

  FuzzOptions no_runs = smoke_options(2, 0);
  const FuzzResult r2 = run_fuzz(*program, no_runs);
  EXPECT_FALSE(r2.ok);

  FuzzOptions with_record = smoke_options(2, 4);
  with_record.base.record_trace = "/tmp/never-written.tgtrace";
  const FuzzResult r3 = run_fuzz(*program, with_record);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("record/replay"), std::string::npos);
}

TEST(FuzzSweep, CleanProgramStaysClean) {
  // A race-free program must produce no reports under any perturbation:
  // perturbations change the schedule, never the program's semantics.
  const auto* program = progs::find_program("dep-pipeline");
  ASSERT_NE(program, nullptr);
  const FuzzResult result = run_fuzz(*program, smoke_options(4, 8));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.distinct_keys.empty());
  for (const FuzzRun& run : result.runs) {
    EXPECT_EQ(run.status, SessionResult::Status::kOk);
    EXPECT_TRUE(run.report_keys.empty());
  }
}

}  // namespace
}  // namespace tg::tools
