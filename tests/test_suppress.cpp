// The pluggable suppression rule API (core/suppress, --suppress=FILE).
//
// Unit-level: the glob matcher, the rule grammar (including its exact error
// messages - the CLI surfaces them verbatim), file loading with line-number
// diagnostics, and the static built-in gauntlet table. End-to-end: a src:
// glob and a cover-everything addr: range must actually mute a known racy
// registry program, counting into suppressed_user while leaving the raw
// conflict census untouched - in both the in-process and sharded backends.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/suppress.hpp"
#include "programs/registry.hpp"
#include "tools/session.hpp"

namespace tg::core {
namespace {

TEST(Suppress, GlobMatch) {
  EXPECT_TRUE(SuppressionSet::glob_match("*", "anything.c"));
  EXPECT_TRUE(SuppressionSet::glob_match("mergesort.c", "mergesort.c"));
  EXPECT_FALSE(SuppressionSet::glob_match("mergesort.c", "mergesort.h"));
  EXPECT_TRUE(SuppressionSet::glob_match("merge*.c", "mergesort.c"));
  EXPECT_TRUE(SuppressionSet::glob_match("*.c", "a/b/c.c"));
  EXPECT_FALSE(SuppressionSet::glob_match("*.c", "c.cpp"));
  EXPECT_TRUE(SuppressionSet::glob_match("f?b.c", "fib.c"));
  EXPECT_FALSE(SuppressionSet::glob_match("f?b.c", "fibb.c"));
  EXPECT_TRUE(SuppressionSet::glob_match("**", ""));
  EXPECT_FALSE(SuppressionSet::glob_match("?", ""));
  EXPECT_TRUE(SuppressionSet::glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(SuppressionSet::glob_match("a*b*c", "aXXbYY"));
}

TEST(Suppress, ParseLineGrammar) {
  SuppressionSet set;
  std::string error;
  bool added = false;

  // Comments and blank lines succeed without adding rules.
  EXPECT_TRUE(set.parse_line("", &error, &added));
  EXPECT_FALSE(added);
  EXPECT_TRUE(set.parse_line("  # a comment", &error, &added));
  EXPECT_FALSE(added);

  EXPECT_TRUE(set.parse_line("stack", &error, &added));
  EXPECT_TRUE(added);
  EXPECT_TRUE(set.stack_enabled());
  EXPECT_TRUE(set.parse_line("tls", &error, &added));
  EXPECT_TRUE(set.tls_enabled());

  EXPECT_TRUE(set.parse_line("src:mergesort.c", &error, &added));
  ASSERT_EQ(set.user_rules().size(), 1u);
  EXPECT_EQ(set.user_rules()[0].pattern, "mergesort.c");
  EXPECT_EQ(set.user_rules()[0].line, 0u);

  EXPECT_TRUE(set.parse_line("src:lib/*.c:42", &error, &added));
  ASSERT_EQ(set.user_rules().size(), 2u);
  EXPECT_EQ(set.user_rules()[1].pattern, "lib/*.c");
  EXPECT_EQ(set.user_rules()[1].line, 42u);

  EXPECT_TRUE(set.parse_line("addr:0x1000-0x2000", &error, &added));
  ASSERT_EQ(set.user_rules().size(), 3u);
  EXPECT_EQ(set.user_rules()[2].lo, 0x1000u);
  EXPECT_EQ(set.user_rules()[2].hi, 0x2000u);
  EXPECT_TRUE(set.parse_line("addr:4096-8192", &error, &added));
  EXPECT_EQ(set.user_rules()[3].lo, 4096u);

  EXPECT_EQ(set.size(), 6u);  // stack + tls + 4 user rules
}

TEST(Suppress, ParseLineErrors) {
  const struct {
    const char* line;
    const char* message;
  } cases[] = {
      {"src:", "empty glob in src: rule"},
      {"src::12", "empty glob in src: rule"},
      {"addr:nope", "malformed addr: rule (want addr:LO-HI): 'addr:nope'"},
      {"addr:0x10", "malformed addr: rule (want addr:LO-HI): 'addr:0x10'"},
      {"addr:0x20-0x10", "empty address range in addr: rule: 'addr:0x20-0x10'"},
      {"addr:0x10-0x10", "empty address range in addr: rule: 'addr:0x10-0x10'"},
      {"frobnicate", "unknown suppression rule: 'frobnicate'"},
  };
  for (const auto& c : cases) {
    SuppressionSet set;
    std::string error;
    EXPECT_FALSE(set.parse_line(c.line, &error)) << c.line;
    EXPECT_EQ(error, c.message) << c.line;
  }
}

TEST(Suppress, LoadFileReportsLineNumbers) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tg-suppress-test.txt";
  {
    std::ofstream out(path);
    out << "# header comment\n"
        << "src:ok.c\n"
        << "addr:bogus\n";
  }
  SuppressionSet set;
  std::string error;
  EXPECT_FALSE(set.load_file(path.string(), &error));
  EXPECT_EQ(error, path.string() +
                       ":3: malformed addr: rule (want addr:LO-HI): "
                       "'addr:bogus'");
  // Rules before the bad line are kept.
  ASSERT_EQ(set.user_rules().size(), 1u);
  EXPECT_EQ(set.user_rules()[0].pattern, "ok.c");
  std::filesystem::remove(path);

  SuppressionSet missing;
  EXPECT_FALSE(missing.load_file("/nonexistent/rules.txt", &error));
  EXPECT_NE(error.find("cannot open suppression file"), std::string::npos)
      << error;
}

TEST(Suppress, BuiltinTableMatchesFlags) {
  for (bool stack : {false, true}) {
    for (bool tls : {false, true}) {
      const SuppressionSet& set = SuppressionSet::builtin(stack, tls);
      EXPECT_EQ(set.stack_enabled(), stack);
      EXPECT_EQ(set.tls_enabled(), tls);
      EXPECT_TRUE(set.user_rules().empty());
      // Static instances: repeated lookups return the same object.
      EXPECT_EQ(&set, &SuppressionSet::builtin(stack, tls));
    }
  }
}

TEST(Suppress, RuleToStringRoundTrips) {
  const char* lines[] = {"stack", "tls", "src:a/*.c", "src:b.c:17",
                         "addr:0x10-0x20"};
  for (const char* line : lines) {
    SuppressionSet set;
    std::string error;
    ASSERT_TRUE(set.parse_line(line, &error)) << error;
    // Re-parse the rendered form; it must parse to an equivalent rule.
    SuppressRule rendered;
    if (!set.user_rules().empty()) {
      SuppressionSet again;
      ASSERT_TRUE(again.parse_line(set.user_rules()[0].to_string(), &error))
          << error;
      EXPECT_EQ(again.user_rules()[0].pattern, set.user_rules()[0].pattern);
      EXPECT_EQ(again.user_rules()[0].line, set.user_rules()[0].line);
      EXPECT_EQ(again.user_rules()[0].lo, set.user_rules()[0].lo);
      EXPECT_EQ(again.user_rules()[0].hi, set.user_rules()[0].hi);
    }
  }
}

// --- end-to-end: rules must mute findings, not just parse --------------------

std::filesystem::path write_rules(const char* name, const char* body) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::ofstream out(path);
  out << body;
  return path;
}

tools::SessionResult run_suppressed(const rt::GuestProgram& program,
                                    const std::string& suppress_file,
                                    int shard_workers = 0) {
  tools::SessionOptions options;
  options.tool = tools::ToolKind::kTaskgrind;
  options.num_threads = 2;
  options.taskgrind.suppress_file = suppress_file;
  options.taskgrind.shard_workers = shard_workers;
  return tools::run_session(program, options);
}

TEST(Suppress, SrcGlobMutesARacyProgram) {
  const rt::GuestProgram* program = progs::find_program("app-mergesort-racy");
  ASSERT_NE(program, nullptr);

  const tools::SessionResult baseline = run_suppressed(*program, "");
  ASSERT_EQ(baseline.status, tools::SessionResult::Status::kOk);
  ASSERT_GT(baseline.report_count, 0u);
  EXPECT_EQ(baseline.analysis_stats.suppressed_user, 0u);

  const auto path = write_rules("tg-suppress-src.txt",
                                "# mute the known mergesort race\n"
                                "src:mergesort*\n");
  const tools::SessionResult muted = run_suppressed(*program, path.string());
  EXPECT_EQ(muted.status, tools::SessionResult::Status::kOk);
  EXPECT_EQ(muted.report_count, 0u);
  EXPECT_GT(muted.analysis_stats.suppressed_user, 0u);
  // User rules mute report construction, never the raw conflict census.
  EXPECT_EQ(muted.analysis_stats.raw_conflicts,
            baseline.analysis_stats.raw_conflicts);
  EXPECT_EQ(muted.analysis_stats.suppressed_user +
                muted.analysis_stats.suppressed_stack +
                muted.analysis_stats.suppressed_tls,
            muted.analysis_stats.raw_conflicts);

  // A glob that matches nothing changes nothing.
  const auto miss = write_rules("tg-suppress-miss.txt", "src:no-such-file*\n");
  const tools::SessionResult unchanged =
      run_suppressed(*program, miss.string());
  EXPECT_TRUE(unchanged.racy());
  EXPECT_EQ(unchanged.report_count, baseline.report_count);
  EXPECT_EQ(unchanged.analysis_stats.suppressed_user, 0u);

  std::filesystem::remove(path);
  std::filesystem::remove(miss);
}

TEST(Suppress, AddrRangeMutesEverythingItCovers) {
  const rt::GuestProgram* program = progs::find_program("app-mergesort-racy");
  ASSERT_NE(program, nullptr);
  // Guest addresses vary run to run, so cover the whole space: every
  // conflict lies inside [0, 2^64) and must be muted.
  const auto path = write_rules("tg-suppress-addr.txt",
                                "addr:0x0-0xffffffffffffffff\n");
  const tools::SessionResult muted = run_suppressed(*program, path.string());
  EXPECT_EQ(muted.status, tools::SessionResult::Status::kOk);
  EXPECT_EQ(muted.report_count, 0u);
  EXPECT_GT(muted.analysis_stats.suppressed_user, 0u);
  std::filesystem::remove(path);
}

TEST(Suppress, RulesApplyIdenticallyInShardMode) {
  const rt::GuestProgram* program = progs::find_program("app-mergesort-racy");
  ASSERT_NE(program, nullptr);
  const auto path = write_rules("tg-suppress-shard.txt", "src:mergesort*\n");
  const tools::SessionResult local = run_suppressed(*program, path.string());
  const tools::SessionResult sharded =
      run_suppressed(*program, path.string(), /*shard_workers=*/2);
  EXPECT_EQ(sharded.status, local.status);
  EXPECT_EQ(sharded.report_count, local.report_count);
  EXPECT_EQ(sharded.analysis_stats.suppressed_user,
            local.analysis_stats.suppressed_user);
  EXPECT_EQ(sharded.analysis_stats.raw_conflicts,
            local.analysis_stats.raw_conflicts);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tg::core
