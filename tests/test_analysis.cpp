// analyze_races unit tests over hand-built segment graphs: Algorithm 1's
// pair handling, each suppression in isolation, mutex exclusion, report
// dedup, caps and determinism under the parallel pass.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "vex/builder.hpp"
#include "vex/memory.hpp"

namespace tg::core {
namespace {

vex::SrcLoc loc(uint32_t line) { return {1, line}; }

/// Minimal program for file-name resolution in reports.
const vex::Program& test_program() {
  static const vex::Program program = [] {
    vex::ProgramBuilder pb("analysis_test");
    vex::FnBuilder& f = pb.fn("main", "analysis.c");
    f.ret(f.c(0));
    return pb.take();
  }();
  return program;
}

struct GraphFixture {
  SegmentGraph graph;

  Segment& seg(int tid = 0) {
    Segment& s = graph.new_segment();
    s.task_id = s.id;
    s.tid = tid;
    return s;
  }

  AnalysisResult analyze(AnalysisOptions options = {}) {
    if (!graph.finalized()) graph.finalize();
    return analyze_races(graph, test_program(), nullptr, options);
  }
};

TEST(Analysis, UnorderedWriteWriteConflict) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x104, 0x10c, loc(20));
  auto result = f.analyze();
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].lo, 0x104u);
  EXPECT_EQ(result.reports[0].hi, 0x108u);
}

TEST(Analysis, OrderedPairSkipped) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x100, 0x108, loc(20));
  f.graph.add_edge(a.id, b.id);
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.stats.pairs_ordered, 1u);
}

TEST(Analysis, ReadReadNeverConflicts) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.reads.add(0x100, 0x108, loc(10));
  b.reads.add(0x100, 0x108, loc(20));
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
}

TEST(Analysis, WriteReadConflictBothDirections) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.reads.add(0x100, 0x108, loc(10));
  b.writes.add(0x100, 0x108, loc(20));
  auto result = f.analyze();
  ASSERT_EQ(result.reports.size(), 1u);
  // One endpoint is the write, the other the read.
  EXPECT_NE(result.reports[0].first.is_write,
            result.reports[0].second.is_write);
}

TEST(Analysis, MutexSharingSkipsPair) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x100, 0x108, loc(20));
  a.mutexes = {0xAA};
  b.mutexes = {0xAA};
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.stats.pairs_mutex, 1u);

  // Disabling mutex respect restores the conflict.
  AnalysisOptions options;
  options.respect_mutexes = false;
  GraphFixture f2;
  Segment& a2 = f2.seg();
  Segment& b2 = f2.seg();
  a2.writes.add(0x100, 0x108, loc(10));
  b2.writes.add(0x100, 0x108, loc(20));
  a2.mutexes = {0xAA};
  b2.mutexes = {0xAA};
  EXPECT_FALSE(f2.analyze(options).reports.empty());
}

TEST(Analysis, StackSuppressionRequiresBothTransient) {
  const vex::GuestAddr base = vex::GuestLayout::stack_top(0);
  const vex::GuestAddr limit = vex::GuestLayout::stack_bottom(0);

  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  for (Segment* s : {&a, &b}) {
    s->stack_base = base;
    s->stack_limit = limit;
    s->sp_at_start = base - 64;  // frames below base-64 are segment-local
  }
  // Both write an address below both segments' entry sp: reused frame.
  a.writes.add(base - 128, base - 120, loc(10));
  b.writes.add(base - 128, base - 120, loc(20));
  auto suppressed = f.analyze();
  EXPECT_TRUE(suppressed.reports.empty());
  EXPECT_GE(suppressed.stats.suppressed_stack, 1u);

  // An address ABOVE the entry sp (a live parent frame) is NOT suppressed.
  GraphFixture f2;
  Segment& a2 = f2.seg();
  Segment& b2 = f2.seg();
  for (Segment* s : {&a2, &b2}) {
    s->stack_base = base;
    s->stack_limit = limit;
    s->sp_at_start = base - 64;
  }
  a2.writes.add(base - 32, base - 24, loc(10));
  b2.writes.add(base - 32, base - 24, loc(20));
  EXPECT_FALSE(f2.analyze().reports.empty());
}

TEST(Analysis, TlsSuppressionSameThreadSameDtv) {
  GraphFixture f;
  Segment& a = f.seg(0);
  Segment& b = f.seg(0);
  vex::Dtv dtv;
  dtv.gen = 1;
  dtv.blocks = {0x5000};
  a.dtv_at_end = dtv;
  b.dtv_at_end = dtv;
  a.tcb = 0x77;
  b.tcb = 0x77;
  // The program's module-0 TLS size defaults to >= 8 bytes.
  a.writes.add(0x5000, 0x5008, loc(10));
  b.writes.add(0x5000, 0x5008, loc(20));
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
  EXPECT_GE(result.stats.suppressed_tls, 1u);

  // Different threads: not suppressed.
  GraphFixture f2;
  Segment& a2 = f2.seg(0);
  Segment& b2 = f2.seg(1);
  a2.dtv_at_end = dtv;
  b2.dtv_at_end = dtv;
  a2.tcb = 0x77;
  b2.tcb = 0x77;
  a2.writes.add(0x5000, 0x5008, loc(10));
  b2.writes.add(0x5000, 0x5008, loc(20));
  EXPECT_FALSE(f2.analyze().reports.empty());
}

TEST(Analysis, TlsSuppressionDefeatedByDtvChangeDuringSegment) {
  // A DTV (re)allocated while a segment ran means the end-of-segment
  // snapshot does not describe where earlier accesses landed: the pair
  // must be reported even though both snapshots compare equal.
  vex::Dtv dtv;
  dtv.gen = 1;
  dtv.blocks = {0x5000};
  for (bool changed_in_first : {true, false}) {
    GraphFixture f;
    Segment& a = f.seg(0);
    Segment& b = f.seg(0);
    a.dtv_at_end = dtv;
    b.dtv_at_end = dtv;
    a.tcb = 0x77;
    b.tcb = 0x77;
    (changed_in_first ? a : b).dtv_changed_during = true;
    a.writes.add(0x5000, 0x5008, loc(10));
    b.writes.add(0x5000, 0x5008, loc(20));
    auto result = f.analyze();
    EXPECT_FALSE(result.reports.empty()) << changed_in_first;
    EXPECT_EQ(result.stats.suppressed_tls, 0u) << changed_in_first;
  }
}

TEST(Analysis, TlsSuppressionDefeatedByDivergentDtvGenerations) {
  // Same blocks but the generation counter moved between the snapshots:
  // the DTVs compare unequal, so no suppression.
  GraphFixture f;
  Segment& a = f.seg(0);
  Segment& b = f.seg(0);
  a.dtv_at_end.gen = 1;
  a.dtv_at_end.blocks = {0x5000};
  b.dtv_at_end.gen = 2;
  b.dtv_at_end.blocks = {0x5000};
  a.tcb = 0x77;
  b.tcb = 0x77;
  a.writes.add(0x5000, 0x5008, loc(10));
  b.writes.add(0x5000, 0x5008, loc(20));
  auto result = f.analyze();
  EXPECT_FALSE(result.reports.empty());
  EXPECT_EQ(result.stats.suppressed_tls, 0u);
}

TEST(Analysis, TlsZeroSizeModuleFallsBackToEightBytes) {
  // test_program() declares no TLS module sizes, so in_dtv_blocks falls
  // back to size 8 for the recorded block: exactly [block, block+8) is
  // suppressed, one byte past is not.
  vex::Dtv dtv;
  dtv.gen = 1;
  dtv.blocks = {0x5000};
  GraphFixture inside;
  Segment& ia = inside.seg(0);
  Segment& ib = inside.seg(0);
  ia.dtv_at_end = dtv;
  ib.dtv_at_end = dtv;
  ia.tcb = 0x77;
  ib.tcb = 0x77;
  ia.writes.add(0x5000, 0x5008, loc(10));
  ib.writes.add(0x5000, 0x5008, loc(20));
  auto suppressed = inside.analyze();
  EXPECT_TRUE(suppressed.reports.empty());
  EXPECT_GE(suppressed.stats.suppressed_tls, 1u);

  GraphFixture outside;
  Segment& a = outside.seg(0);
  Segment& b = outside.seg(0);
  a.dtv_at_end = dtv;
  b.dtv_at_end = dtv;
  a.tcb = 0x77;
  b.tcb = 0x77;
  // Overlap [0x5004, 0x500c) crosses the fallback block end 0x5008.
  a.writes.add(0x5004, 0x500c, loc(10));
  b.writes.add(0x5004, 0x500c, loc(20));
  auto reported = outside.analyze();
  EXPECT_FALSE(reported.reports.empty());
  EXPECT_EQ(reported.stats.suppressed_tls, 0u);
}

TEST(Analysis, MutexPairStillRacesAgainstUnprotectedSegment) {
  // a and b serialize through a shared mutex, but c touches the same
  // address with no mutex at all: (a, c) and (b, c) must still report.
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  Segment& c = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x100, 0x108, loc(20));
  c.writes.add(0x100, 0x108, loc(30));
  a.mutexes = {0xAA};
  b.mutexes = {0xAA};
  auto result = f.analyze();
  EXPECT_EQ(result.stats.pairs_mutex, 1u);  // only (a, b)
  EXPECT_EQ(result.reports.size(), 2u);     // (a, c) and (b, c)
}

TEST(Analysis, SortedSetsIntersect) {
  using V = std::vector<uint64_t>;
  EXPECT_FALSE(sorted_sets_intersect(V{}, V{}));
  EXPECT_FALSE(sorted_sets_intersect(V{1, 2, 3}, V{}));
  EXPECT_FALSE(sorted_sets_intersect(V{}, V{1, 2, 3}));
  EXPECT_FALSE(sorted_sets_intersect(V{1, 3, 5}, V{2, 4, 6}));
  EXPECT_FALSE(sorted_sets_intersect(V{1, 2}, V{3, 4}));
  EXPECT_TRUE(sorted_sets_intersect(V{1, 3, 5}, V{5}));
  EXPECT_TRUE(sorted_sets_intersect(V{7}, V{1, 7, 9}));
  EXPECT_TRUE(sorted_sets_intersect(V{1, 4, 9}, V{2, 4, 8}));
  EXPECT_TRUE(sorted_sets_intersect(V{2}, V{2}));
}

TEST(Analysis, BboxPruningSkipsDisjointFootprints) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x900, 0x908, loc(20));  // far away: bboxes disjoint
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
  // The sweep prunes the pair before it is ever generated.
  EXPECT_GE(result.stats.pairs_never_generated, 1u);
  EXPECT_EQ(result.stats.pairs_skipped_bbox, 0u);
  EXPECT_EQ(result.stats.pairs_total, 0u);

  // Pruning off: the pair is examined (and still yields nothing).
  GraphFixture f2;
  Segment& a2 = f2.seg();
  Segment& b2 = f2.seg();
  a2.writes.add(0x100, 0x108, loc(10));
  b2.writes.add(0x900, 0x908, loc(20));
  AnalysisOptions options;
  options.use_bbox_pruning = false;
  auto unpruned = f2.analyze(options);
  EXPECT_TRUE(unpruned.reports.empty());
  EXPECT_EQ(unpruned.stats.pairs_never_generated, 0u);
  EXPECT_EQ(unpruned.stats.pairs_total, 1u);
}

TEST(Analysis, BboxPruningPreservesFindings) {
  auto build = [](SegmentGraph& graph) {
    for (int i = 0; i < 30; ++i) {
      Segment& s = graph.new_segment();
      s.task_id = static_cast<uint64_t>(i);
      s.tid = i % 3;
      // Clustered footprints: some pairs disjoint, some overlapping.
      const uint64_t base = 0x1000 + static_cast<uint64_t>(i % 5) * 0x1000;
      s.writes.add(base, base + 8, loc(static_cast<uint32_t>(100 + i)));
      if (i >= 4) {
        graph.add_edge(static_cast<SegId>(i - 4), static_cast<SegId>(i));
      }
    }
    graph.finalize();
  };
  SegmentGraph g1, g2;
  build(g1);
  build(g2);
  AnalysisOptions with;
  with.use_bbox_pruning = true;
  AnalysisOptions without;
  without.use_bbox_pruning = false;
  auto r1 = analyze_races(g1, test_program(), nullptr, with);
  auto r2 = analyze_races(g2, test_program(), nullptr, without);
  EXPECT_GT(r1.stats.pairs_never_generated, 0u);
  ASSERT_EQ(r1.reports.size(), r2.reports.size());
  for (size_t i = 0; i < r1.reports.size(); ++i) {
    EXPECT_EQ(r1.reports[i].to_string(), r2.reports[i].to_string());
  }
}

TEST(Analysis, RegionFastPathCounts) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.region_id = 0;
  b.region_id = 1;
  a.writes.add(0x100, 0x108, loc(10));
  b.writes.add(0x100, 0x108, loc(20));
  f.graph.set_region_window(0, 1, 2);
  f.graph.set_region_window(1, 3, 4);
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.stats.pairs_region_fast, 1u);
}

TEST(Analysis, DedupByLinePairAndBlock) {
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  Segment& c = f.seg();
  // Three unordered segments, all writing the same range with the same
  // source locations: one finding after dedup, three raw conflicts.
  for (Segment* s : {&a, &b, &c}) s->writes.add(0x100, 0x108, loc(10));
  auto result = f.analyze();
  EXPECT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.stats.raw_conflicts, 3u * 2u);  // both directions
}

TEST(Analysis, MaxReportsCap) {
  GraphFixture f;
  // Many distinct-location conflicts.
  for (int i = 0; i < 12; ++i) {
    Segment& s = f.seg();
    s.writes.add(0x100, 0x108, loc(static_cast<uint32_t>(100 + i)));
  }
  AnalysisOptions options;
  options.max_reports = 5;
  auto result = f.analyze(options);
  EXPECT_LE(result.reports.size(), 5u);
}

TEST(Analysis, MaxReportsCapIndependentOfThreadCount) {
  // The cap is applied once, after the merged sort/dedup: a small cap must
  // yield the exact same (full-length) report list at every thread count,
  // not `threads * cap` survivors or a thread-dependent subset.
  auto build = [](SegmentGraph& graph) {
    for (int i = 0; i < 24; ++i) {
      Segment& s = graph.new_segment();
      s.task_id = static_cast<uint64_t>(i);
      s.writes.add(0x100, 0x108, loc(static_cast<uint32_t>(100 + i)));
    }
    graph.finalize();
  };
  std::vector<std::string> expected;
  for (int threads : {1, 2, 4, 8}) {
    SegmentGraph graph;
    build(graph);
    AnalysisOptions options;
    options.threads = threads;
    options.max_reports = 7;
    auto result = analyze_races(graph, test_program(), nullptr, options);
    ASSERT_EQ(result.reports.size(), 7u) << "threads=" << threads;
    std::vector<std::string> texts;
    for (const auto& report : result.reports) {
      texts.push_back(report.to_string());
    }
    if (threads == 1) {
      expected = std::move(texts);
    } else {
      EXPECT_EQ(texts, expected) << "threads=" << threads;
    }
  }
}

TEST(Analysis, ParallelMatchesSequentialOnRandomGraph) {
  auto build = [](SegmentGraph& graph) {
    for (int i = 0; i < 40; ++i) {
      Segment& s = graph.new_segment();
      s.task_id = static_cast<uint64_t>(i);
      s.tid = i % 3;
      const uint64_t base = 0x1000 + static_cast<uint64_t>(i % 7) * 0x10;
      if (i % 2 == 0) {
        s.writes.add(base, base + 8, loc(static_cast<uint32_t>(i)));
      } else {
        s.reads.add(base, base + 8, loc(static_cast<uint32_t>(i)));
      }
      if (i >= 5) {
        graph.add_edge(static_cast<SegId>(i - 5), static_cast<SegId>(i));
      }
    }
    graph.finalize();
  };
  SegmentGraph g1, g2;
  build(g1);
  build(g2);
  AnalysisOptions seq;
  seq.threads = 1;
  AnalysisOptions par;
  par.threads = 4;
  auto r1 = analyze_races(g1, test_program(), nullptr, seq);
  auto r2 = analyze_races(g2, test_program(), nullptr, par);
  ASSERT_EQ(r1.reports.size(), r2.reports.size());
  for (size_t i = 0; i < r1.reports.size(); ++i) {
    EXPECT_EQ(r1.reports[i].summary(), r2.reports[i].summary());
  }
  EXPECT_EQ(r1.stats.raw_conflicts, r2.stats.raw_conflicts);
}

TEST(Analysis, AllocProvenanceAttached) {
  AllocRegistry allocs;
  allocs.record(0x100, 64, {});
  GraphFixture f;
  Segment& a = f.seg();
  Segment& b = f.seg();
  a.writes.add(0x110, 0x118, loc(10));
  b.writes.add(0x110, 0x118, loc(20));
  f.graph.finalize();
  auto result = analyze_races(f.graph, test_program(), &allocs, {});
  ASSERT_EQ(result.reports.size(), 1u);
  ASSERT_NE(result.reports[0].alloc, nullptr);
  EXPECT_EQ(result.reports[0].alloc->addr, 0x100u);
  EXPECT_EQ(result.reports[0].alloc->size, 64u);
}

TEST(Analysis, SyntheticNodesNeverPaired) {
  GraphFixture f;
  Segment& a = f.seg();
  a.writes.add(0x100, 0x108, loc(10));
  Segment& barrier = f.graph.new_segment(SegKind::kBarrier);
  barrier.writes.add(0x100, 0x108, loc(20));  // nonsensical, must be ignored
  auto result = f.analyze();
  EXPECT_TRUE(result.reports.empty());
}

}  // namespace
}  // namespace tg::core
