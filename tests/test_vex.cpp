// VM, builder, guest memory, allocator and stdlib tests.
#include <gtest/gtest.h>

#include "support/accounting.hpp"
#include "vex/builder.hpp"
#include "vex/galloc.hpp"
#include "vex/memory.hpp"
#include "vex/stdlib.hpp"
#include "vex/vm.hpp"

namespace tg::vex {
namespace {

// A trivial intrinsic handler for programs that do not use the runtime.
class NullIntrinsics : public IntrinsicHandler {
 public:
  Result on_intrinsic(HostCtx&, IntrinsicId, std::span<const Value>,
                      std::span<const int64_t>) override {
    return Result::cont();
  }
};

/// Builds main() with `body`, runs it to completion, returns (exit, vm).
struct RunHarness {
  explicit RunHarness(const std::function<void(FnBuilder&)>& body,
                      bool with_stdlib = false) {
    ProgramBuilder pb("test");
    if (with_stdlib) install_stdlib(pb);
    FnBuilder& f = pb.fn("main", "test.c");
    body(f);
    if (!f.terminated()) f.ret(f.c(0));
    program = pb.take();
    vm = std::make_unique<Vm>(program);
    vm->set_intrinsic_handler(&null_intrinsics);
    thread = &vm->create_thread();
    vm->push_call(*thread, program.entry, {});
    result = vm->run(*thread, 0, 100'000'000);
  }

  int64_t ret() const { return thread->last_return.i; }

  Program program;
  NullIntrinsics null_intrinsics;
  std::unique_ptr<Vm> vm;
  ThreadCtx* thread = nullptr;
  RunResult result = RunResult::kBudget;
};

// --- guest memory ---------------------------------------------------------

TEST(GuestMemory, RoundTripsAllSizes) {
  GuestMemory mem;
  for (uint32_t size : {1u, 2u, 4u, 8u}) {
    const uint64_t value = 0x1122334455667788ull & ((size == 8)
        ? ~0ull : ((1ull << (8 * size)) - 1));
    mem.store(0x2000'0000 + size * 64, size, value);
    EXPECT_EQ(mem.load(0x2000'0000 + size * 64, size), value) << size;
  }
}

TEST(GuestMemory, ZeroInitialized) {
  GuestMemory mem;
  EXPECT_EQ(mem.load(0x3000'0000, 8), 0u);
}

TEST(GuestMemory, ChunkStraddlingAccess) {
  GuestMemory mem;
  // 256 KiB chunks; write across the first chunk boundary above the heap.
  const GuestAddr addr = 0x0104'0000 - 3;
  mem.store(addr, 8, 0xdeadbeefcafebabeull);
  EXPECT_EQ(mem.load(addr, 8), 0xdeadbeefcafebabeull);
}

TEST(GuestMemory, FloatRoundTrip) {
  GuestMemory mem;
  mem.store_f64(0x2000'0000, 3.14159);
  EXPECT_DOUBLE_EQ(mem.load_f64(0x2000'0000), 3.14159);
}

TEST(GuestMemory, CopyAndFill) {
  GuestMemory mem;
  mem.fill(0x2000'0000, 0xab, 16);
  mem.copy(0x2000'0100, 0x2000'0000, 16);
  EXPECT_EQ(mem.load(0x2000'010f, 1), 0xabu);
}

TEST(GuestMemory, ResidentBytesGrowOnTouch) {
  GuestMemory mem;
  const uint64_t before = mem.resident_bytes();
  mem.store(0x2000'0000, 1, 1);
  EXPECT_GT(mem.resident_bytes(), before);
}

// --- guest allocator ------------------------------------------------------

TEST(GuestAllocator, RecyclesFreedAddresses) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(64);
  alloc.deallocate(a);
  const GuestAddr b = alloc.allocate(64);
  // The §IV-B memory-recycling behaviour: same address handed out twice.
  EXPECT_EQ(a, b);
}

TEST(GuestAllocator, DistinctLiveBlocks) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(64);
  const GuestAddr b = alloc.allocate(64);
  EXPECT_NE(a, b);
  EXPECT_GE(b, a + 64);
}

TEST(GuestAllocator, CoalescesNeighbours) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(16);
  const GuestAddr b = alloc.allocate(16);
  const GuestAddr c = alloc.allocate(16);
  (void)c;
  alloc.deallocate(a);
  alloc.deallocate(b);
  // a+b coalesced: a 32-byte request fits at the old `a`.
  EXPECT_EQ(alloc.allocate(32), a);
}

TEST(GuestAllocator, FirstFitPrefersLowestAddress) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(64);
  const GuestAddr b = alloc.allocate(64);
  alloc.deallocate(b);
  alloc.deallocate(a);
  EXPECT_EQ(alloc.allocate(16), a);
}

TEST(GuestAllocator, TracksLiveBytesAndCounts) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(100);
  EXPECT_EQ(alloc.live_bytes(), 100u);
  EXPECT_EQ(alloc.live_block_size(a), 100u);
  EXPECT_TRUE(alloc.is_live(a));
  alloc.deallocate(a);
  EXPECT_EQ(alloc.live_bytes(), 0u);
  EXPECT_FALSE(alloc.is_live(a));
  EXPECT_EQ(alloc.alloc_count(), 1u);
  EXPECT_EQ(alloc.free_count(), 1u);
}

TEST(GuestAllocator, BlockContaining) {
  GuestAllocator alloc(GuestLayout::kHeapBase);
  const GuestAddr a = alloc.allocate(100);
  EXPECT_EQ(alloc.block_containing(a + 50), a);
  EXPECT_EQ(alloc.block_containing(a + 200), 0u);
}

// --- VM semantics ---------------------------------------------------------

TEST(Vm, IntegerArithmetic) {
  RunHarness h([](FnBuilder& f) {
    V a = f.c(20);
    V b = f.c(3);
    f.ret(a * b + a / b - a % b);  // 60 + 6 - 2 = 64
  });
  EXPECT_EQ(h.ret(), 64);
}

TEST(Vm, Comparisons) {
  RunHarness h([](FnBuilder& f) {
    V a = f.c(5);
    V b = f.c(7);
    // (a<b) + (a<=b) + (a>b) + (a>=b) + (a==b) + (a!=b) = 1+1+0+0+0+1
    f.ret((a < b) + (a <= b) + (a > b) + (a >= b) + (a == b) + (a != b));
  });
  EXPECT_EQ(h.ret(), 3);
}

TEST(Vm, FloatArithmetic) {
  RunHarness h([](FnBuilder& f) {
    V a = f.cf(2.0);
    V x = f.fsqrt(f.fmul(a, f.cf(8.0)));  // 4
    f.ret(f.f2i(f.fadd(x, f.cf(0.5))));
  });
  EXPECT_EQ(h.ret(), 4);
}

TEST(Vm, StackSlotsAreMemory) {
  RunHarness h([](FnBuilder& f) {
    Slot x = f.slot();
    x.set(41);
    x.set(x.get() + f.c(1));
    f.ret(x.get());
  });
  EXPECT_EQ(h.ret(), 42);
}

TEST(Vm, IfElse) {
  RunHarness h([](FnBuilder& f) {
    Slot r = f.slot();
    f.if_(f.c(1) < f.c(2), [&] { r.set(10); }, [&] { r.set(20); });
    f.ret(r.get());
  });
  EXPECT_EQ(h.ret(), 10);
}

TEST(Vm, WhileLoopSumsRange) {
  RunHarness h([](FnBuilder& f) {
    Slot sum = f.slot();
    sum.set(0);
    f.for_(0, 10, [&](Slot i) { sum.set(sum.get() + i.get()); });
    f.ret(sum.get());
  });
  EXPECT_EQ(h.ret(), 45);
}

TEST(Vm, NestedLoops) {
  RunHarness h([](FnBuilder& f) {
    Slot sum = f.slot();
    sum.set(0);
    f.for_(0, 5, [&](Slot i) {
      f.for_(0, 5, [&](Slot j) {
        sum.set(sum.get() + i.get() * j.get());
      });
    });
    f.ret(sum.get());  // (0+1+2+3+4)^2 = 100
  });
  EXPECT_EQ(h.ret(), 100);
}

TEST(Vm, GuestFunctionCall) {
  ProgramBuilder pb("call");
  FnBuilder& add = pb.fn("add", "test.c", 2);
  add.ret(add.param(0) + add.param(1));
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.call("add", {f.c(30), f.c(12)}));
  Program program = pb.take();
  Vm vm(program);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  EXPECT_EQ(vm.run(t, 0, 1'000'000), RunResult::kFrameFloor);
  EXPECT_EQ(t.last_return.i, 42);
}

TEST(Vm, RecursionFibonacci) {
  ProgramBuilder pb("fib");
  FnBuilder& fib = pb.fn("fib", "test.c", 1);
  {
    Slot r = fib.slot();
    fib.if_(
        fib.param(0) < fib.c(2), [&] { r.set(fib.param(0)); },
        [&] {
          V a = fib.call("fib", {fib.param(0) - fib.c(1)});
          V b = fib.call("fib", {fib.param(0) - fib.c(2)});
          r.set(a + b);
        });
    fib.ret(r.get());
  }
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.call("fib", {f.c(12)}));
  Program program = pb.take();
  Vm vm(program);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 100'000'000);
  EXPECT_EQ(t.last_return.i, 144);
}

TEST(Vm, GlobalsInitialized) {
  ProgramBuilder pb("globals");
  const GuestAddr g = pb.global_init("answer", {42});
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.ld(f.c(static_cast<int64_t>(g))));
  Program program = pb.take();
  Vm vm(program);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 1'000'000);
  EXPECT_EQ(t.last_return.i, 42);
}

TEST(Vm, HaltStopsMachine) {
  RunHarness h([](FnBuilder& f) { f.halt(f.c(7)); });
  EXPECT_EQ(h.result, RunResult::kHalted);
  EXPECT_TRUE(h.vm->halted());
  EXPECT_EQ(h.vm->exit_code(), 7);
}

// --- instrumentation ------------------------------------------------------

/// Counts loads/stores per symbol kind, with optional symbol filtering.
class CountingTool : public Tool {
 public:
  std::string_view name() const override { return "counting"; }

  InstrumentationSet instrumentation_for(const Function& fn) override {
    consulted.push_back(fn.name);
    if (user_only && fn.kind != FnKind::kUser) {
      return InstrumentationSet::none();
    }
    return InstrumentationSet::accesses();
  }

  void on_load(ThreadCtx&, GuestAddr, uint32_t, SrcLoc) override { loads++; }
  void on_store(ThreadCtx&, GuestAddr, uint32_t, SrcLoc) override {
    stores++;
  }

  bool user_only = false;
  int loads = 0;
  int stores = 0;
  std::vector<std::string> consulted;
};

TEST(Instrumentation, CountsAccesses) {
  ProgramBuilder pb("instr");
  FnBuilder& f = pb.fn("main", "test.c");
  Slot x = f.slot();
  x.set(1);                  // 1 store
  x.set(x.get() + f.c(1));   // 1 load, 1 store
  f.ret(x.get());            // 1 load
  Program program = pb.take();
  Vm vm(program);
  CountingTool tool;
  vm.set_tool(&tool);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 1'000'000);
  EXPECT_EQ(tool.loads, 2);
  EXPECT_EQ(tool.stores, 2);
}

TEST(Instrumentation, TranslationCacheConsultsOncePerFunction) {
  ProgramBuilder pb("cache");
  FnBuilder& f = pb.fn("main", "test.c");
  Slot sum = f.slot();
  sum.set(0);
  f.for_(0, 100, [&](Slot i) { sum.set(sum.get() + i.get()); });
  f.ret(sum.get());
  Program program = pb.take();
  Vm vm(program);
  CountingTool tool;
  vm.set_tool(&tool);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 10'000'000);
  // 100 iterations but each block translated once, one consult per fn.
  EXPECT_EQ(tool.consulted.size(), 1u);
  EXPECT_GT(vm.translations(), 0u);
}

TEST(Instrumentation, StdlibAccessesAttributedToLibc) {
  ProgramBuilder pb("libc");
  install_stdlib(pb);
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.rand_());  // rand does a libc-internal load+store of the seed
  Program program = pb.take();

  for (bool user_only : {false, true}) {
    Vm vm(program);
    CountingTool tool;
    tool.user_only = user_only;
    vm.set_tool(&tool);
    NullIntrinsics ni;
    vm.set_intrinsic_handler(&ni);
    ThreadCtx& t = vm.create_thread();
    vm.push_call(t, program.entry, {});
    vm.run(t, 0, 1'000'000);
    if (user_only) {
      // Compile-time instrumentation never sees libc internals.
      EXPECT_EQ(tool.loads + tool.stores, 0);
    } else {
      // Heavyweight DBI sees the seed read-modify-write.
      EXPECT_GE(tool.loads, 1);
      EXPECT_GE(tool.stores, 1);
    }
  }
}

TEST(Instrumentation, FunctionReplacementOverridesMalloc) {
  class ReplacingTool : public Tool {
   public:
    std::string_view name() const override { return "repl"; }
    std::optional<HostFn> replace_function(std::string_view symbol) override {
      if (symbol == "malloc") {
        return HostFn([this](HostCtx&, std::span<const Value>) {
          calls++;
          return Value::from_u(0x7777'0000);
        });
      }
      return std::nullopt;
    }
    int calls = 0;
  };

  ProgramBuilder pb("repl");
  install_stdlib(pb);
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.malloc_(f.c(8)));
  Program program = pb.take();
  Vm vm(program);
  ReplacingTool tool;
  vm.set_tool(&tool);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 1'000'000);
  EXPECT_EQ(tool.calls, 1);
  EXPECT_EQ(static_cast<uint64_t>(t.last_return.i), 0x7777'0000u);
}

TEST(Instrumentation, ClientRequestsReachTool) {
  class ReqTool : public Tool {
   public:
    std::string_view name() const override { return "req"; }
    void on_client_request(ThreadCtx&, uint64_t code,
                           std::span<const Value> args) override {
      last_code = code;
      if (!args.empty()) last_arg = args[0].i;
    }
    uint64_t last_code = 0;
    int64_t last_arg = 0;
  };

  ProgramBuilder pb("req");
  FnBuilder& f = pb.fn("main", "test.c");
  f.client_request(99, {f.c(1234)});
  f.ret(f.c(0));
  Program program = pb.take();
  Vm vm(program);
  ReqTool tool;
  vm.set_tool(&tool);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 1'000'000);
  EXPECT_EQ(tool.last_code, 99u);
  EXPECT_EQ(tool.last_arg, 1234);
}

// --- TLS ------------------------------------------------------------------

TEST(Tls, MainThreadEagerWorkersLazy) {
  ProgramBuilder pb("tls");
  pb.tls_var("x", 8);
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.c(0));
  Program program = pb.take();
  Vm vm(program);
  ThreadCtx& main_thread = vm.create_thread();
  ThreadCtx& worker = vm.create_thread();
  // The loader sets up the main thread's TLS; workers get it on first touch.
  EXPECT_EQ(main_thread.dtv.gen, 1u);
  EXPECT_EQ(worker.dtv.gen, 0u);
  const GuestAddr addr = vm.resolve_tls(worker, 0, 0);
  EXPECT_NE(addr, 0u);
  EXPECT_EQ(worker.dtv.gen, 1u);
}

TEST(Tls, DistinctPerThread) {
  ProgramBuilder pb("tls2");
  pb.tls_var("x", 8);
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.c(0));
  Program program = pb.take();
  Vm vm(program);
  ThreadCtx& a = vm.create_thread();
  ThreadCtx& b = vm.create_thread();
  EXPECT_NE(vm.resolve_tls(a, 0, 0), vm.resolve_tls(b, 0, 0));
  // Idempotent per thread.
  EXPECT_EQ(vm.resolve_tls(a, 0, 0), vm.resolve_tls(a, 0, 0));
}

TEST(Tls, OffsetsWithinModuleBlock) {
  ProgramBuilder pb("tls3");
  const uint32_t off_x = pb.tls_var("x", 8);
  const uint32_t off_y = pb.tls_var("y", 8);
  EXPECT_NE(off_x, off_y);
  FnBuilder& f = pb.fn("main", "test.c");
  f.ret(f.c(0));
  Program program = pb.take();
  Vm vm(program);
  ThreadCtx& t = vm.create_thread();
  EXPECT_EQ(vm.resolve_tls(t, 0, off_y) - vm.resolve_tls(t, 0, off_x),
            static_cast<GuestAddr>(off_y - off_x));
}

// --- stdlib ---------------------------------------------------------------

TEST(Stdlib, PrintCapturesOutput) {
  RunHarness h(
      [](FnBuilder& f) {
        f.print_str("x = ");
        f.print_i64(f.c(42));
        f.print_str("\n");
        f.ret(f.c(0));
      },
      /*with_stdlib=*/true);
  EXPECT_EQ(h.vm->output(), "x = 42\n");
}

TEST(Stdlib, MallocFreeRecycle) {
  RunHarness h(
      [](FnBuilder& f) {
        V a = f.malloc_(f.c(32));
        f.free_(a);
        V b = f.malloc_(f.c(32));
        f.ret(a == b);
      },
      /*with_stdlib=*/true);
  EXPECT_EQ(h.ret(), 1);  // recycling: same address
}

TEST(Stdlib, MemcpyMemset) {
  RunHarness h(
      [](FnBuilder& f) {
        V a = f.malloc_(f.c(16));
        V b = f.malloc_(f.c(16));
        f.call("memset", {a, f.c(7), f.c(16)});
        f.call("memcpy", {b, a, f.c(16)});
        f.ret(f.ld(b + f.c(15), 1));
      },
      /*with_stdlib=*/true);
  EXPECT_EQ(h.ret(), 7);
}

TEST(Stdlib, CallocZeroes) {
  RunHarness h(
      [](FnBuilder& f) {
        V a = f.malloc_(f.c(8));
        f.st(a, f.c(-1));
        f.free_(a);
        V b = f.call("calloc", {f.c(1), f.c(8)});  // recycles a's block
        f.ret(f.ld(b));
      },
      /*with_stdlib=*/true);
  EXPECT_EQ(h.ret(), 0);
}

TEST(Stdlib, RandDeterministicAfterSrand) {
  auto run = [] {
    RunHarness h(
        [](FnBuilder& f) {
          f.call("srand", {f.c(11)});
          f.ret(f.rand_());
        },
        /*with_stdlib=*/true);
    return h.ret();
  };
  EXPECT_EQ(run(), run());
}

// --- stack traces ---------------------------------------------------------

TEST(StackTrace, SymbolizesCallChain) {
  ProgramBuilder pb("trace");
  install_stdlib(pb);

  class TraceTool : public Tool {
   public:
    explicit TraceTool(Vm*& vm_slot) : vm_slot_(vm_slot) {}
    std::string_view name() const override { return "trace"; }
    std::optional<HostFn> replace_function(std::string_view symbol) override {
      if (symbol != "malloc") return std::nullopt;
      return HostFn([this](HostCtx& ctx, std::span<const Value>) {
        trace = vm_slot_->capture_stack(ctx.thread);
        return Value::from_u(0x5555'0000);
      });
    }
    StackTrace trace;
    Vm*& vm_slot_;
  };

  FnBuilder& inner = pb.fn("inner", "trace.c", 0);
  inner.line(10);
  V p = inner.malloc_(inner.c(8));
  inner.ret(p);
  FnBuilder& f = pb.fn("main", "trace.c");
  f.line(20);
  f.ret(f.call("inner", {}));
  Program program = pb.take();
  Vm* vm_ptr = nullptr;
  TraceTool tool(vm_ptr);
  Vm vm(program);
  vm_ptr = &vm;
  vm.set_tool(&tool);
  NullIntrinsics ni;
  vm.set_intrinsic_handler(&ni);
  ThreadCtx& t = vm.create_thread();
  vm.push_call(t, program.entry, {});
  vm.run(t, 0, 1'000'000);

  ASSERT_EQ(tool.trace.size(), 2u);
  EXPECT_STREQ(tool.trace[0].fn_name, "inner");
  EXPECT_EQ(tool.trace[0].line, 10u);
  EXPECT_STREQ(tool.trace[1].fn_name, "main");
  EXPECT_EQ(tool.trace[1].line, 20u);
}

// --- validation -----------------------------------------------------------

TEST(Validation, CatchesBadBranchTarget) {
  Program program;
  program.name = "bad";
  program.files = {"f"};
  Function fn;
  fn.name = "main";
  fn.id = 0;
  fn.nregs = 1;
  Block block;
  Instr jmp;
  jmp.op = Op::kJmp;
  jmp.imm = 5;  // out of range
  block.instrs.push_back(jmp);
  fn.blocks.push_back(block);
  program.functions.push_back(fn);
  program.entry = 0;
  EXPECT_NE(program.validate().find("jmp target"), std::string::npos);
}

TEST(Validation, CatchesMissingTerminator) {
  Program program;
  program.name = "bad";
  program.files = {"f"};
  Function fn;
  fn.name = "main";
  fn.id = 0;
  fn.nregs = 2;
  Block block;
  Instr ci;
  ci.op = Op::kConstI;
  ci.dst = 0;
  block.instrs.push_back(ci);
  fn.blocks.push_back(block);
  program.functions.push_back(fn);
  program.entry = 0;
  EXPECT_NE(program.validate().find("terminator"), std::string::npos);
}

}  // namespace
}  // namespace tg::vex
