# Empty compiler generated dependencies file for test_graph_builder.
# This may be replaced when dependencies are built.
