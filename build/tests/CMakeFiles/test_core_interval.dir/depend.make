# Empty dependencies file for test_core_interval.
# This may be replaced when dependencies are built.
