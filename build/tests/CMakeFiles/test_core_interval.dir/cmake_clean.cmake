file(REMOVE_RECURSE
  "CMakeFiles/test_core_interval.dir/test_core_interval.cpp.o"
  "CMakeFiles/test_core_interval.dir/test_core_interval.cpp.o.d"
  "test_core_interval"
  "test_core_interval.pdb"
  "test_core_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
