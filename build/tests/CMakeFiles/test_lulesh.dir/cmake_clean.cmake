file(REMOVE_RECURSE
  "CMakeFiles/test_lulesh.dir/test_lulesh.cpp.o"
  "CMakeFiles/test_lulesh.dir/test_lulesh.cpp.o.d"
  "test_lulesh"
  "test_lulesh.pdb"
  "test_lulesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
