file(REMOVE_RECURSE
  "CMakeFiles/test_taskgrind.dir/test_taskgrind.cpp.o"
  "CMakeFiles/test_taskgrind.dir/test_taskgrind.cpp.o.d"
  "test_taskgrind"
  "test_taskgrind.pdb"
  "test_taskgrind[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgrind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
