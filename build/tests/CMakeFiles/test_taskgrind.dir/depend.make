# Empty dependencies file for test_taskgrind.
# This may be replaced when dependencies are built.
