# Empty dependencies file for test_vex.
# This may be replaced when dependencies are built.
