file(REMOVE_RECURSE
  "CMakeFiles/test_vex.dir/test_vex.cpp.o"
  "CMakeFiles/test_vex.dir/test_vex.cpp.o.d"
  "test_vex"
  "test_vex.pdb"
  "test_vex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
