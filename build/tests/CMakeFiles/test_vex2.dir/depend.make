# Empty dependencies file for test_vex2.
# This may be replaced when dependencies are built.
