file(REMOVE_RECURSE
  "CMakeFiles/test_vex2.dir/test_vex2.cpp.o"
  "CMakeFiles/test_vex2.dir/test_vex2.cpp.o.d"
  "test_vex2"
  "test_vex2.pdb"
  "test_vex2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vex2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
