# Empty compiler generated dependencies file for test_core_graph.
# This may be replaced when dependencies are built.
