file(REMOVE_RECURSE
  "CMakeFiles/test_qthreads.dir/test_qthreads.cpp.o"
  "CMakeFiles/test_qthreads.dir/test_qthreads.cpp.o.d"
  "test_qthreads"
  "test_qthreads.pdb"
  "test_qthreads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
