# Empty dependencies file for test_qthreads.
# This may be replaced when dependencies are built.
