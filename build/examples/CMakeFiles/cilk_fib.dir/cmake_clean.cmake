file(REMOVE_RECURSE
  "CMakeFiles/cilk_fib.dir/cilk_fib.cpp.o"
  "CMakeFiles/cilk_fib.dir/cilk_fib.cpp.o.d"
  "cilk_fib"
  "cilk_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cilk_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
