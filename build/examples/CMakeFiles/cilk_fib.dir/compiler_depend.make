# Empty compiler generated dependencies file for cilk_fib.
# This may be replaced when dependencies are built.
