# Empty dependencies file for parallelism_advisor.
# This may be replaced when dependencies are built.
