file(REMOVE_RECURSE
  "CMakeFiles/parallelism_advisor.dir/parallelism_advisor.cpp.o"
  "CMakeFiles/parallelism_advisor.dir/parallelism_advisor.cpp.o.d"
  "parallelism_advisor"
  "parallelism_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelism_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
