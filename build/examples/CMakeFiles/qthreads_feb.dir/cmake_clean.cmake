file(REMOVE_RECURSE
  "CMakeFiles/qthreads_feb.dir/qthreads_feb.cpp.o"
  "CMakeFiles/qthreads_feb.dir/qthreads_feb.cpp.o.d"
  "qthreads_feb"
  "qthreads_feb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qthreads_feb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
