# Empty compiler generated dependencies file for qthreads_feb.
# This may be replaced when dependencies are built.
