file(REMOVE_RECURSE
  "CMakeFiles/custom_tool.dir/custom_tool.cpp.o"
  "CMakeFiles/custom_tool.dir/custom_tool.cpp.o.d"
  "custom_tool"
  "custom_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
