
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/lulesh_analysis.cpp" "examples/CMakeFiles/lulesh_analysis.dir/lulesh_analysis.cpp.o" "gcc" "examples/CMakeFiles/lulesh_analysis.dir/lulesh_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/tg_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/lulesh/CMakeFiles/tg_lulesh.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vex/CMakeFiles/tg_vex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
