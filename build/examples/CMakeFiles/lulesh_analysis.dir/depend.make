# Empty dependencies file for lulesh_analysis.
# This may be replaced when dependencies are built.
