file(REMOVE_RECURSE
  "CMakeFiles/lulesh_analysis.dir/lulesh_analysis.cpp.o"
  "CMakeFiles/lulesh_analysis.dir/lulesh_analysis.cpp.o.d"
  "lulesh_analysis"
  "lulesh_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lulesh_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
