file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_suppressions.dir/bench_ablation_suppressions.cpp.o"
  "CMakeFiles/bench_ablation_suppressions.dir/bench_ablation_suppressions.cpp.o.d"
  "bench_ablation_suppressions"
  "bench_ablation_suppressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_suppressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
