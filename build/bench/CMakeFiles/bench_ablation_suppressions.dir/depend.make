# Empty dependencies file for bench_ablation_suppressions.
# This may be replaced when dependencies are built.
