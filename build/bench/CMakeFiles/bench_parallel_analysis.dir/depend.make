# Empty dependencies file for bench_parallel_analysis.
# This may be replaced when dependencies are built.
