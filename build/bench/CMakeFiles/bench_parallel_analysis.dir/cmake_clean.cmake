file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_analysis.dir/bench_parallel_analysis.cpp.o"
  "CMakeFiles/bench_parallel_analysis.dir/bench_parallel_analysis.cpp.o.d"
  "bench_parallel_analysis"
  "bench_parallel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
