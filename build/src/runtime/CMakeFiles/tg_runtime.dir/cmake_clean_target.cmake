file(REMOVE_RECURSE
  "libtg_runtime.a"
)
