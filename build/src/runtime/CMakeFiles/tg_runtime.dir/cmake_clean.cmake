file(REMOVE_RECURSE
  "CMakeFiles/tg_runtime.dir/deps.cpp.o"
  "CMakeFiles/tg_runtime.dir/deps.cpp.o.d"
  "CMakeFiles/tg_runtime.dir/execution.cpp.o"
  "CMakeFiles/tg_runtime.dir/execution.cpp.o.d"
  "CMakeFiles/tg_runtime.dir/frontend.cpp.o"
  "CMakeFiles/tg_runtime.dir/frontend.cpp.o.d"
  "CMakeFiles/tg_runtime.dir/runtime.cpp.o"
  "CMakeFiles/tg_runtime.dir/runtime.cpp.o.d"
  "libtg_runtime.a"
  "libtg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
