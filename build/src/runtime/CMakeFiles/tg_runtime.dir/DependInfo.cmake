
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/deps.cpp" "src/runtime/CMakeFiles/tg_runtime.dir/deps.cpp.o" "gcc" "src/runtime/CMakeFiles/tg_runtime.dir/deps.cpp.o.d"
  "/root/repo/src/runtime/execution.cpp" "src/runtime/CMakeFiles/tg_runtime.dir/execution.cpp.o" "gcc" "src/runtime/CMakeFiles/tg_runtime.dir/execution.cpp.o.d"
  "/root/repo/src/runtime/frontend.cpp" "src/runtime/CMakeFiles/tg_runtime.dir/frontend.cpp.o" "gcc" "src/runtime/CMakeFiles/tg_runtime.dir/frontend.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/tg_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/tg_runtime.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vex/CMakeFiles/tg_vex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
