
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/archer.cpp" "src/tools/CMakeFiles/tg_tools.dir/archer.cpp.o" "gcc" "src/tools/CMakeFiles/tg_tools.dir/archer.cpp.o.d"
  "/root/repo/src/tools/romp.cpp" "src/tools/CMakeFiles/tg_tools.dir/romp.cpp.o" "gcc" "src/tools/CMakeFiles/tg_tools.dir/romp.cpp.o.d"
  "/root/repo/src/tools/session.cpp" "src/tools/CMakeFiles/tg_tools.dir/session.cpp.o" "gcc" "src/tools/CMakeFiles/tg_tools.dir/session.cpp.o.d"
  "/root/repo/src/tools/tasksan.cpp" "src/tools/CMakeFiles/tg_tools.dir/tasksan.cpp.o" "gcc" "src/tools/CMakeFiles/tg_tools.dir/tasksan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vex/CMakeFiles/tg_vex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
