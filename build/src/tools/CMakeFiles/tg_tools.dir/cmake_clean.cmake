file(REMOVE_RECURSE
  "CMakeFiles/tg_tools.dir/archer.cpp.o"
  "CMakeFiles/tg_tools.dir/archer.cpp.o.d"
  "CMakeFiles/tg_tools.dir/romp.cpp.o"
  "CMakeFiles/tg_tools.dir/romp.cpp.o.d"
  "CMakeFiles/tg_tools.dir/session.cpp.o"
  "CMakeFiles/tg_tools.dir/session.cpp.o.d"
  "CMakeFiles/tg_tools.dir/tasksan.cpp.o"
  "CMakeFiles/tg_tools.dir/tasksan.cpp.o.d"
  "libtg_tools.a"
  "libtg_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
