# Empty compiler generated dependencies file for tg_tools.
# This may be replaced when dependencies are built.
