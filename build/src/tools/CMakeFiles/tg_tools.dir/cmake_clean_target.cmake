file(REMOVE_RECURSE
  "libtg_tools.a"
)
