file(REMOVE_RECURSE
  "CMakeFiles/tg_lulesh.dir/lulesh.cpp.o"
  "CMakeFiles/tg_lulesh.dir/lulesh.cpp.o.d"
  "libtg_lulesh.a"
  "libtg_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
