# Empty dependencies file for tg_lulesh.
# This may be replaced when dependencies are built.
