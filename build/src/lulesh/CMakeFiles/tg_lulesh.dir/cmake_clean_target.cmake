file(REMOVE_RECURSE
  "libtg_lulesh.a"
)
