file(REMOVE_RECURSE
  "CMakeFiles/tg_support.dir/accounting.cpp.o"
  "CMakeFiles/tg_support.dir/accounting.cpp.o.d"
  "CMakeFiles/tg_support.dir/log.cpp.o"
  "CMakeFiles/tg_support.dir/log.cpp.o.d"
  "CMakeFiles/tg_support.dir/stats.cpp.o"
  "CMakeFiles/tg_support.dir/stats.cpp.o.d"
  "CMakeFiles/tg_support.dir/table.cpp.o"
  "CMakeFiles/tg_support.dir/table.cpp.o.d"
  "libtg_support.a"
  "libtg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
