file(REMOVE_RECURSE
  "CMakeFiles/tg_core.dir/analysis.cpp.o"
  "CMakeFiles/tg_core.dir/analysis.cpp.o.d"
  "CMakeFiles/tg_core.dir/graph_builder.cpp.o"
  "CMakeFiles/tg_core.dir/graph_builder.cpp.o.d"
  "CMakeFiles/tg_core.dir/interval_set.cpp.o"
  "CMakeFiles/tg_core.dir/interval_set.cpp.o.d"
  "CMakeFiles/tg_core.dir/parallelism.cpp.o"
  "CMakeFiles/tg_core.dir/parallelism.cpp.o.d"
  "CMakeFiles/tg_core.dir/report.cpp.o"
  "CMakeFiles/tg_core.dir/report.cpp.o.d"
  "CMakeFiles/tg_core.dir/segment_graph.cpp.o"
  "CMakeFiles/tg_core.dir/segment_graph.cpp.o.d"
  "CMakeFiles/tg_core.dir/taskgrind.cpp.o"
  "CMakeFiles/tg_core.dir/taskgrind.cpp.o.d"
  "libtg_core.a"
  "libtg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
