# Empty compiler generated dependencies file for tg_core.
# This may be replaced when dependencies are built.
