
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/tg_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/graph_builder.cpp" "src/core/CMakeFiles/tg_core.dir/graph_builder.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/graph_builder.cpp.o.d"
  "/root/repo/src/core/interval_set.cpp" "src/core/CMakeFiles/tg_core.dir/interval_set.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/interval_set.cpp.o.d"
  "/root/repo/src/core/parallelism.cpp" "src/core/CMakeFiles/tg_core.dir/parallelism.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/parallelism.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/tg_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/report.cpp.o.d"
  "/root/repo/src/core/segment_graph.cpp" "src/core/CMakeFiles/tg_core.dir/segment_graph.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/segment_graph.cpp.o.d"
  "/root/repo/src/core/taskgrind.cpp" "src/core/CMakeFiles/tg_core.dir/taskgrind.cpp.o" "gcc" "src/core/CMakeFiles/tg_core.dir/taskgrind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vex/CMakeFiles/tg_vex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
