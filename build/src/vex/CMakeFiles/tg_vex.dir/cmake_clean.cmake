file(REMOVE_RECURSE
  "CMakeFiles/tg_vex.dir/builder.cpp.o"
  "CMakeFiles/tg_vex.dir/builder.cpp.o.d"
  "CMakeFiles/tg_vex.dir/galloc.cpp.o"
  "CMakeFiles/tg_vex.dir/galloc.cpp.o.d"
  "CMakeFiles/tg_vex.dir/ir.cpp.o"
  "CMakeFiles/tg_vex.dir/ir.cpp.o.d"
  "CMakeFiles/tg_vex.dir/memory.cpp.o"
  "CMakeFiles/tg_vex.dir/memory.cpp.o.d"
  "CMakeFiles/tg_vex.dir/stdlib.cpp.o"
  "CMakeFiles/tg_vex.dir/stdlib.cpp.o.d"
  "CMakeFiles/tg_vex.dir/vm.cpp.o"
  "CMakeFiles/tg_vex.dir/vm.cpp.o.d"
  "libtg_vex.a"
  "libtg_vex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_vex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
