file(REMOVE_RECURSE
  "libtg_vex.a"
)
