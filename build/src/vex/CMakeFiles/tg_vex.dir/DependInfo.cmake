
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vex/builder.cpp" "src/vex/CMakeFiles/tg_vex.dir/builder.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/builder.cpp.o.d"
  "/root/repo/src/vex/galloc.cpp" "src/vex/CMakeFiles/tg_vex.dir/galloc.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/galloc.cpp.o.d"
  "/root/repo/src/vex/ir.cpp" "src/vex/CMakeFiles/tg_vex.dir/ir.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/ir.cpp.o.d"
  "/root/repo/src/vex/memory.cpp" "src/vex/CMakeFiles/tg_vex.dir/memory.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/memory.cpp.o.d"
  "/root/repo/src/vex/stdlib.cpp" "src/vex/CMakeFiles/tg_vex.dir/stdlib.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/stdlib.cpp.o.d"
  "/root/repo/src/vex/vm.cpp" "src/vex/CMakeFiles/tg_vex.dir/vm.cpp.o" "gcc" "src/vex/CMakeFiles/tg_vex.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
