# Empty compiler generated dependencies file for tg_vex.
# This may be replaced when dependencies are built.
