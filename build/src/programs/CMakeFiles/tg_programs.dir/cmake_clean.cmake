file(REMOVE_RECURSE
  "CMakeFiles/tg_programs.dir/apps.cpp.o"
  "CMakeFiles/tg_programs.dir/apps.cpp.o.d"
  "CMakeFiles/tg_programs.dir/drb.cpp.o"
  "CMakeFiles/tg_programs.dir/drb.cpp.o.d"
  "CMakeFiles/tg_programs.dir/misc.cpp.o"
  "CMakeFiles/tg_programs.dir/misc.cpp.o.d"
  "CMakeFiles/tg_programs.dir/registry.cpp.o"
  "CMakeFiles/tg_programs.dir/registry.cpp.o.d"
  "CMakeFiles/tg_programs.dir/tmb.cpp.o"
  "CMakeFiles/tg_programs.dir/tmb.cpp.o.d"
  "libtg_programs.a"
  "libtg_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
