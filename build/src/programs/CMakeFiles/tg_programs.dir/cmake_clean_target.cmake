file(REMOVE_RECURSE
  "libtg_programs.a"
)
