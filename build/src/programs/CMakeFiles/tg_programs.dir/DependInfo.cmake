
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/apps.cpp" "src/programs/CMakeFiles/tg_programs.dir/apps.cpp.o" "gcc" "src/programs/CMakeFiles/tg_programs.dir/apps.cpp.o.d"
  "/root/repo/src/programs/drb.cpp" "src/programs/CMakeFiles/tg_programs.dir/drb.cpp.o" "gcc" "src/programs/CMakeFiles/tg_programs.dir/drb.cpp.o.d"
  "/root/repo/src/programs/misc.cpp" "src/programs/CMakeFiles/tg_programs.dir/misc.cpp.o" "gcc" "src/programs/CMakeFiles/tg_programs.dir/misc.cpp.o.d"
  "/root/repo/src/programs/registry.cpp" "src/programs/CMakeFiles/tg_programs.dir/registry.cpp.o" "gcc" "src/programs/CMakeFiles/tg_programs.dir/registry.cpp.o.d"
  "/root/repo/src/programs/tmb.cpp" "src/programs/CMakeFiles/tg_programs.dir/tmb.cpp.o" "gcc" "src/programs/CMakeFiles/tg_programs.dir/tmb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vex/CMakeFiles/tg_vex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
