# Empty dependencies file for tg_programs.
# This may be replaced when dependencies are built.
