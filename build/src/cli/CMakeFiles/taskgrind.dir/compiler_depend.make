# Empty compiler generated dependencies file for taskgrind.
# This may be replaced when dependencies are built.
