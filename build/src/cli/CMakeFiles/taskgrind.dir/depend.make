# Empty dependencies file for taskgrind.
# This may be replaced when dependencies are built.
