file(REMOVE_RECURSE
  "CMakeFiles/taskgrind.dir/main.cpp.o"
  "CMakeFiles/taskgrind.dir/main.cpp.o.d"
  "taskgrind"
  "taskgrind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskgrind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
